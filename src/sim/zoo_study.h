// The policy-zoo study (ROADMAP's modern-policy question): re-run the
// paper's Experiment 2 with the src/zoo/ policies next to the paper's
// winner, and measure the standalone admission layer on top of SIZE.
//
//   run_policy_zoo_study   {SIZE, LRU, GDS, GDSF, SLRU, W-TinyLFU,
//                          adaptive} at one finite capacity, each policy a
//                          parallel cell, plus SIZE x {always,
//                          size-threshold, doorkeeper, doa} admission legs
//
// Outcomes carry the Experiment-2 measures (HR/WHR, percent of the
// infinite-cache reference) plus the admission-era counters
// (admission_rejects, dead_on_arrival_evictions) so EXPERIMENTS.md can
// answer "does SIZE still win?" — and "do vetoes actually cut
// dead-on-arrival churn?" — with numbers. Cells fan out over the shared
// ParallelRunner and are collected in table order, so the study is
// bit-identical across WCS_JOBS (the determinism contract).
#pragma once

#include <string>
#include <vector>

#include "src/sim/experiments.h"

namespace wcs {

struct ZooPolicyOutcome {
  std::string policy;
  double hr = 0.0;
  double whr = 0.0;
  double hr_pct_of_infinite = 0.0;
  double whr_pct_of_infinite = 0.0;
  std::uint64_t evictions = 0;
  std::uint64_t dead_on_arrival_evictions = 0;
};

struct ZooAdmissionOutcome {
  std::string admission;  // "always", "size-threshold", "doorkeeper", "doa"
  double hr = 0.0;
  double whr = 0.0;
  std::uint64_t insertions = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t dead_on_arrival_evictions = 0;
};

struct ZooStudyResult {
  std::string workload;
  double cache_fraction = 0.0;
  std::uint64_t capacity_bytes = 0;
  std::vector<ZooPolicyOutcome> outcomes;       // fixed policy order, see .cpp
  std::vector<ZooAdmissionOutcome> admissions;  // SIZE x admission variants
};

/// `infinite` must be the Experiment 1 result for the same trace (the HR
/// reference); every policy and every admission variant is one cell.
[[nodiscard]] ZooStudyResult run_policy_zoo_study(
    const std::string& workload, const Trace& trace, const Experiment1Result& infinite,
    double cache_fraction, ParallelRunner& runner = ParallelRunner::shared());

}  // namespace wcs
