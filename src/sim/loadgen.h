// Multi-threaded load generator (DESIGN.md §13): the concurrency era's
// answer to "serve traffic, don't just replay it". A worker pool drives a
// RequestSource through a sharded target — ShardedCache directly, or a
// real ProxyCache fleet via ShardedProxyTarget — with the determinism
// contract intact:
//
//   * every shard sees its own requests in trace order, whatever the
//     thread count (distinct shards race freely);
//   * merged results (counters + daily series) are bit-identical across
//     thread counts for a fixed shard count, and — with threads == 1 —
//     bit-identical to simulate_sharded over the same source.
//
// Two arrival disciplines:
//   * kClosedLoop — worker w owns shards s ≡ w (mod threads) and drains
//     each owned shard in trace order: zero cross-thread waiting, the
//     classic closed-loop pool.
//   * kOpenLoop — the trace is the arrival schedule: workers claim global
//     trace indices from a shared cursor and a per-shard ticket (sequence
//     number) makes same-shard requests serve in trace order. Models an
//     arrival stream that ignores service times, so same-shard bursts
//     really contend. Deadlock-free: the smallest unfinished global index
//     is always runnable (all earlier indices — its per-shard
//     predecessors included — have finished or are running).
//
// No wall-clock anywhere in this file: timing a run is bench/examples
// territory (tools/lint.py no-wall-clock). threads == 1 runs
// inline on the caller's thread — no spawn, no locks contended — which is
// what the determinism tests diff against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sharded_cache.h"
#include "src/proxy/sharded_proxy.h"
#include "src/sim/chaos.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/intern.h"
#include "src/trace/request_source.h"

namespace wcs {

/// The seam the load generator drives: anything that partitions requests
/// into shards and serves one request at a time per shard. The generator
/// guarantees serve() calls for one shard value never overlap and arrive
/// in trace order; calls for distinct shards may race.
class ShardedTarget {
 public:
  ShardedTarget() = default;
  ShardedTarget(const ShardedTarget&) = delete;
  ShardedTarget& operator=(const ShardedTarget&) = delete;
  virtual ~ShardedTarget() = default;

  [[nodiscard]] virtual std::uint32_t shard_count() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t shard_of(const Request& request) const noexcept = 0;
  /// Serve one request on `shard`; returns whether it was a cache hit.
  virtual bool serve(std::uint32_t shard, const Request& request) = 0;
  /// Invariant sweep at the end-of-run sync point; default: nothing to audit.
  [[nodiscard]] virtual AuditReport audit() const { return {}; }
  /// True when the target carries a thread-affine ObsRecorder; run_load
  /// refuses threads > 1 against a recording target.
  [[nodiscard]] virtual bool recording() const noexcept { return false; }
};

/// Drives a ShardedCache (the simulator-model path). The cache must
/// outlive the target.
class ShardedCacheTarget final : public ShardedTarget {
 public:
  explicit ShardedCacheTarget(ShardedCache& cache) noexcept : cache_(&cache) {}

  [[nodiscard]] std::uint32_t shard_count() const noexcept override {
    return cache_->shard_count();
  }
  [[nodiscard]] std::uint32_t shard_of(const Request& request) const noexcept override {
    return cache_->shard_of(request.url);
  }
  bool serve(std::uint32_t shard, const Request& request) override;
  [[nodiscard]] AuditReport audit() const override { return cache_->audit(); }
  [[nodiscard]] bool recording() const noexcept override { return cache_->recording(); }

 private:
  ShardedCache* cache_;
};

/// Drives a real ProxyCache fleet (ShardedProxy) over HTTP messages: each
/// shard gets its own lane — a thread-affine SynthOrigin plus a reusable
/// HttpRequest — touched only under the generator's per-shard
/// serialization, so the whole request path (origin document edits,
/// conditional GETs, 304s) runs concurrently without a global lock.
class ShardedProxyTarget final : public ShardedTarget {
 public:
  /// `names` maps the source's UrlIds to URL strings and must outlive the
  /// target (streaming sources grow their table; ids never change meaning,
  /// so concurrent lookups of already-emitted ids are safe only because
  /// run_load materializes the whole source before any worker starts).
  ShardedProxyTarget(ShardedProxy::Config config, const InternTable& names);

  [[nodiscard]] std::uint32_t shard_count() const noexcept override {
    return proxy_->shard_count();
  }
  [[nodiscard]] std::uint32_t shard_of(const Request& request) const noexcept override {
    return shard_of_url(request.url, proxy_->shard_count());
  }
  /// X-Cache: HIT is the hit signal, mirroring replay_through_proxy.
  bool serve(std::uint32_t shard, const Request& request) override;
  [[nodiscard]] AuditReport audit() const override { return proxy_->audit(); }
  [[nodiscard]] bool recording() const noexcept override { return recording_; }

  [[nodiscard]] const ShardedProxy& proxy() const noexcept { return *proxy_; }

 private:
  /// Per-shard replay lane; owned here, used only under the generator's
  /// per-shard serialization (one lane never sees two threads at once).
  struct Lane {
    SynthOrigin origin;
    HttpRequest http;  // reused per request; the proxy never keeps a reference
  };

  const InternTable* names_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<ShardedProxy> proxy_;  // built after lanes_ (upstreams point in)
  bool recording_ = false;
};

enum class ArrivalMode {
  kClosedLoop,  // workers own shards, drain them in trace order
  kOpenLoop,    // workers claim trace indices; per-shard tickets order them
};

struct LoadGenConfig {
  std::uint32_t threads = 1;
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  /// interval != 0 runs target.audit() at the end-of-run sync point (a
  /// concurrent run has no deterministic mid-stream point to audit at).
  SimAudit audit;
};

struct LoadGenResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t requested_bytes = 0;
  std::uint64_t hit_bytes = 0;
  /// Merged per-day series: recorded per shard, absorbed in shard index
  /// order at the sync point — bit-identical to single-threaded recording.
  DailySeries daily;
  ConcurrencyFootprint concurrency;

  [[nodiscard]] double hit_rate() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
  [[nodiscard]] double weighted_hit_rate() const noexcept {
    return requested_bytes == 0
               ? 0.0
               : static_cast<double>(hit_bytes) / static_cast<double>(requested_bytes);
  }
};

/// Materialize `source` (single pass, stream errors throw), dispatch every
/// request to its shard, and drive `target` with `config.threads` workers
/// under the chosen arrival discipline. Throws std::invalid_argument on a
/// zero thread count or a threads > 1 run against a recording target, and
/// std::runtime_error when a worker fails or the end-of-run audit does.
[[nodiscard]] LoadGenResult run_load(ShardedTarget& target, RequestSource& source,
                                     const LoadGenConfig& config = {});

}  // namespace wcs
