#include "src/sim/experiments.h"

#include <stdexcept>

#include "src/core/policy.h"

namespace wcs {

std::uint64_t fraction_of(std::uint64_t max_needed, double fraction) {
  if (!(fraction > 0.0)) throw std::invalid_argument{"fraction_of: fraction <= 0"};
  const auto capacity =
      static_cast<std::uint64_t>(static_cast<double>(max_needed) * fraction);
  return capacity == 0 ? 1 : capacity;
}

Experiment1Result run_experiment1(const std::string& workload, const Trace& trace) {
  const SimResult sim = simulate_infinite(trace);
  Experiment1Result result;
  result.workload = workload;
  result.max_needed = sim.max_used_bytes;
  result.overall_hr = sim.daily.overall_hr();
  result.overall_whr = sim.daily.overall_whr();
  result.mean_daily_hr = sim.daily.mean_daily_hr();
  result.mean_daily_whr = sim.daily.mean_daily_whr();
  result.smoothed_hr = sim.daily.smoothed_hr();
  result.smoothed_whr = sim.daily.smoothed_whr();
  return result;
}

namespace {

PolicyOutcome outcome_for(const std::string& name, const SimResult& sim,
                          const Experiment1Result& infinite) {
  PolicyOutcome outcome;
  outcome.policy = name;
  outcome.hr = sim.daily.overall_hr();
  outcome.whr = sim.daily.overall_whr();
  outcome.hr_ratio_curve = series_ratio(sim.daily.smoothed_hr(), infinite.smoothed_hr);
  outcome.whr_ratio_curve = series_ratio(sim.daily.smoothed_whr(), infinite.smoothed_whr);
  outcome.hr_pct_of_infinite = series_mean(outcome.hr_ratio_curve);
  outcome.whr_pct_of_infinite = series_mean(outcome.whr_ratio_curve);
  return outcome;
}

}  // namespace

Experiment2Result run_experiment2(const std::string& workload, const Trace& trace,
                                  const Experiment1Result& infinite, double cache_fraction,
                                  const std::vector<KeySpec>& specs, ParallelRunner& runner) {
  Experiment2Result result;
  result.workload = workload;
  result.cache_fraction = cache_fraction;
  result.capacity_bytes = fraction_of(infinite.max_needed, cache_fraction);
  // One cell per KeySpec; cells share only read-only state (trace, infinite
  // reference) and are collected in spec order, so the outcome table is
  // independent of the job count.
  const std::uint64_t capacity = result.capacity_bytes;
  result.outcomes = runner.map(specs.size(), [&](std::size_t i) {
    return [&trace, &infinite, &specs, capacity, i] {
      const SimResult sim =
          simulate(trace, capacity, [&specs, i] { return make_sorted_policy(specs[i]); });
      return outcome_for(specs[i].name(), sim, infinite);
    };
  });
  return result;
}

Experiment2Result run_experiment2_literature(const std::string& workload, const Trace& trace,
                                             const Experiment1Result& infinite,
                                             double cache_fraction, ParallelRunner& runner) {
  Experiment2Result result;
  result.workload = workload;
  result.cache_fraction = cache_fraction;
  result.capacity_bytes = fraction_of(infinite.max_needed, cache_fraction);

  struct Entry {
    const char* name;
    PolicyFactory factory;
    PeriodicSweepConfig periodic;
  };
  const std::vector<Entry> entries = {
      {"SIZE", [] { return make_size(); }, {}},
      {"LRU-MIN", [] { return make_lru_min(); }, {}},
      {"LRU", [] { return make_lru(); }, {}},
      {"FIFO", [] { return make_fifo(); }, {}},
      {"LFU", [] { return make_lfu(); }, {}},
      {"Hyper-G", [] { return make_hyper_g(); }, {}},
      {"Pitkow/Recker", [] { return make_pitkow_recker(); }, {}},
      // The original schedule: also sweep at each day boundary down to a
      // comfort level of 90% of capacity.
      {"Pitkow/Recker+daily", [] { return make_pitkow_recker(); }, {true, 0.9}},
      {"RANDOM", [] { return make_random(); }, {}},
  };
  const std::uint64_t capacity = result.capacity_bytes;
  result.outcomes = runner.map(entries.size(), [&](std::size_t i) {
    return [&trace, &infinite, &entries, capacity, i] {
      const Entry& entry = entries[i];
      const SimResult sim = simulate(trace, capacity, entry.factory, entry.periodic);
      return outcome_for(entry.name, sim, infinite);
    };
  });
  return result;
}

SecondaryKeyResult run_secondary_key_study(const std::string& workload, const Trace& trace,
                                           double cache_fraction, Key primary,
                                           ParallelRunner& runner) {
  SecondaryKeyResult result;
  result.workload = workload;
  result.primary = primary;

  const Experiment1Result infinite = run_experiment1(workload, trace);
  const std::uint64_t capacity = fraction_of(infinite.max_needed, cache_fraction);

  // Baseline: random secondary key.
  const SimResult baseline = simulate(trace, capacity, [primary] {
    return make_sorted_policy(KeySpec{{primary, Key::kRandom}});
  });
  const OptSeries base_whr = baseline.daily.smoothed_whr();
  const OptSeries base_hr = baseline.daily.smoothed_hr();

  std::vector<Key> secondaries;
  for (const Key secondary : kPrimaryKeys) {
    if (secondary != primary) secondaries.push_back(secondary);
  }
  result.outcomes = runner.map(secondaries.size(), [&](std::size_t i) {
    return [&trace, &secondaries, &base_whr, &base_hr, capacity, primary, i] {
      const Key secondary = secondaries[i];
      const SimResult sim = simulate(trace, capacity, [primary, secondary] {
        return make_sorted_policy(KeySpec{{primary, secondary}});
      });
      SecondaryKeyOutcome outcome;
      outcome.secondary = std::string{to_string(secondary)};
      outcome.whr_ratio_curve = series_ratio(sim.daily.smoothed_whr(), base_whr);
      outcome.whr_pct_of_random = series_mean(outcome.whr_ratio_curve);
      outcome.hr_pct_of_random = series_mean(series_ratio(sim.daily.smoothed_hr(), base_hr));
      return outcome;
    };
  });
  return result;
}

Experiment3Result run_experiment3(const std::string& workload, const Trace& trace,
                                  std::uint64_t max_needed, double l1_fraction) {
  Experiment3Result result;
  result.workload = workload;
  result.l1_fraction = l1_fraction;
  result.l1_capacity = fraction_of(max_needed, l1_fraction);

  // L1 uses the Experiment 2 winner (SIZE, random secondary); L2 is
  // infinite so its policy never runs.
  const TwoLevelSimResult sim = simulate_two_level(
      trace, result.l1_capacity, [] { return make_size(); }, [] { return make_lru(); });
  result.l1_hr = sim.stats.l1_hit_rate();
  result.l2_hr = sim.stats.l2_hit_rate();
  result.l2_whr = sim.stats.l2_weighted_hit_rate();
  result.l2_smoothed_hr = sim.l2_daily.smoothed_hr();
  result.l2_smoothed_whr = sim.l2_daily.smoothed_whr();
  return result;
}

Experiment4Result run_experiment4(const std::string& workload, const Trace& trace,
                                  std::uint64_t max_needed, double cache_fraction,
                                  const std::vector<double>& audio_fractions,
                                  ParallelRunner& runner) {
  Experiment4Result result;
  result.workload = workload;
  result.total_capacity = fraction_of(max_needed, cache_fraction);

  const ClassWhrReference reference = simulate_infinite_by_class(trace);
  result.infinite_audio_whr = reference.audio_daily.smoothed_whr();
  result.infinite_non_audio_whr = reference.non_audio_daily.smoothed_whr();

  const std::uint64_t capacity = result.total_capacity;
  result.curves = runner.map(audio_fractions.size(), [&](std::size_t i) {
    return [&trace, &audio_fractions, capacity, i] {
      const double fraction = audio_fractions[i];
      const PartitionedSimResult sim = simulate_partitioned_audio(
          trace, capacity, fraction, [] { return make_size(); });
      Experiment4Curve curve;
      curve.audio_fraction = fraction;
      curve.audio_whr = sim.audio_daily.overall_whr();
      curve.non_audio_whr = sim.non_audio_daily.overall_whr();
      curve.audio_smoothed_whr = sim.audio_daily.smoothed_whr();
      curve.non_audio_smoothed_whr = sim.non_audio_daily.smoothed_whr();
      return curve;
    };
  });
  return result;
}

LatencyStudyResult run_latency_study(const std::string& workload, const Trace& trace,
                                     std::uint64_t max_needed, double cache_fraction) {
  LatencyStudyResult result;
  result.workload = workload;
  result.capacity_bytes = fraction_of(max_needed, cache_fraction);

  struct Candidate {
    const char* name;
    KeySpec spec;
  };
  const std::vector<Candidate> candidates = {
      {"SIZE", KeySpec{{Key::kSize, Key::kRandom}}},
      {"LATENCY", KeySpec{{Key::kLatency, Key::kRandom}}},
      {"LATENCY+SIZE", KeySpec{{Key::kLatency, Key::kSize}}},
      {"TYPE+SIZE", KeySpec{{Key::kTypePriority, Key::kSize}}},
      {"TYPE+ATIME", KeySpec{{Key::kTypePriority, Key::kAtime}}},
      {"ATIME", KeySpec{{Key::kAtime, Key::kRandom}}},
      {"NREF", KeySpec{{Key::kNref, Key::kRandom}}},
  };

  for (const Candidate& candidate : candidates) {
    CacheConfig config;
    config.capacity_bytes = result.capacity_bytes;
    Cache cache{config, make_sorted_policy(candidate.spec)};
    std::uint64_t total_latency = 0;
    std::uint64_t saved_latency = 0;
    TraceSource source{trace};
    Request request;
    while (source.next(request)) {
      const AccessResult access = cache.access(request);
      total_latency += request.latency_ms;
      if (access.hit) saved_latency += request.latency_ms;
    }
    LatencyOutcome outcome;
    outcome.policy = candidate.name;
    outcome.hr = cache.stats().hit_rate();
    outcome.whr = cache.stats().weighted_hit_rate();
    outcome.latency_savings =
        total_latency == 0
            ? 0.0
            : static_cast<double>(saved_latency) / static_cast<double>(total_latency);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

SharedL2Result run_shared_l2_study(const std::string& workload, const Trace& trace,
                                   std::uint64_t max_needed, double l1_fraction,
                                   int groups) {
  if (groups < 1) throw std::invalid_argument{"run_shared_l2_study: groups < 1"};
  SharedL2Result result;
  result.workload = workload;
  result.groups = groups;
  result.l1_capacity =
      fraction_of(max_needed, l1_fraction) / static_cast<std::uint64_t>(groups);
  if (result.l1_capacity == 0) result.l1_capacity = 1;

  const auto run = [&](bool shared) {
    std::vector<Cache> l1s;
    std::vector<Cache> l2s;
    l1s.reserve(static_cast<std::size_t>(groups));
    const std::size_t l2_count = shared ? 1 : static_cast<std::size_t>(groups);
    l2s.reserve(l2_count);
    for (int g = 0; g < groups; ++g) {
      CacheConfig config;
      config.capacity_bytes = result.l1_capacity;
      l1s.emplace_back(config, make_size());
    }
    for (std::size_t i = 0; i < l2_count; ++i) {
      l2s.emplace_back(CacheConfig{}, make_lru());  // infinite
    }
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_hit_bytes = 0;
    std::uint64_t total_bytes = 0;
    TraceSource source{trace};
    Request request;
    while (source.next(request)) {
      const auto group =
          static_cast<std::size_t>(request.client % static_cast<std::uint32_t>(groups));
      total_bytes += request.size;
      if (l1s[group].access(request).hit) {
        ++l1_hits;
        continue;
      }
      Cache& l2 = l2s[shared ? 0 : group];
      if (l2.access(request).hit) {
        ++l2_hits;
        l2_hit_bytes += request.size;
      }
    }
    const double n = static_cast<double>(trace.size());
    struct Rates {
      double l1_hr;
      double l2_hr;
      double l2_whr;
    };
    return Rates{n == 0 ? 0.0 : static_cast<double>(l1_hits) / n,
                 n == 0 ? 0.0 : static_cast<double>(l2_hits) / n,
                 total_bytes == 0 ? 0.0
                                  : static_cast<double>(l2_hit_bytes) /
                                        static_cast<double>(total_bytes)};
  };

  const auto shared = run(true);
  const auto dedicated = run(false);
  result.l1_hr = shared.l1_hr;
  result.shared_l2_hr = shared.l2_hr;
  result.shared_l2_whr = shared.l2_whr;
  result.dedicated_l2_hr = dedicated.l2_hr;
  result.dedicated_l2_whr = dedicated.l2_whr;
  return result;
}

}  // namespace wcs
