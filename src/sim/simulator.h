// Trace-driven proxy-cache simulator (the C++ replacement for the paper's
// PERL discrete-event model, Appendix A). Streams a RequestSource — a
// materialized Trace, a line-by-line log reader, or a lazy synthetic
// workload — against a single cache, a two-level hierarchy, or a
// partitioned cache, producing the output measures the paper lists: hit
// rate and weighted hit rate at daily intervals, final/peak cache size,
// and upper-level HR/WHR. Results are bit-identical across source kinds
// fed the same request sequence (the RequestSource determinism contract).
#pragma once

#include <functional>
#include <memory>

#include "src/core/cache.h"
#include "src/core/partitioned_cache.h"
#include "src/core/sharded_cache.h"
#include "src/core/two_level.h"
#include "src/sim/metrics.h"
#include "src/trace/request_source.h"
#include "src/trace/trace.h"

namespace wcs {

using PolicyFactory = std::function<std::unique_ptr<RemovalPolicy>()>;

/// What the run cost in memory: how much the request source kept resident
/// (self-reported; O(requests) for a Trace, O(corpus) for streaming
/// sources) and the process peak RSS for the record (monotone across the
/// process — comparable only run-to-run, not leg-to-leg within one
/// process).
struct SourceFootprint {
  std::uint64_t requests = 0;
  std::uint64_t source_resident_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
};

/// Availability bookkeeping (DESIGN.md §9): how many requests got a usable
/// answer. The pure cache simulator's implicit upstream is perfect, so
/// simulate() reports served == requests and failed == 0; the chaos
/// harness (src/sim/chaos.h) replays through a real ProxyCache under a
/// FaultPlan and fills in real failures.
struct AvailabilityStats {
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  [[nodiscard]] double availability() const noexcept {
    const std::uint64_t total = served + failed;
    return total == 0 ? 1.0 : static_cast<double>(served) / static_cast<double>(total);
  }
};

/// How the result was produced: how many worker threads drove the replay
/// and how many shards partitioned the cache. The legacy single-cache
/// entry points report {1, 1}; the determinism contract (DESIGN.md §13)
/// says the merged aggregates are invariant in `threads` and, for the
/// no-eviction regime, in `shards` too — the footprint records what ran,
/// never what the numbers depend on.
struct ConcurrencyFootprint {
  std::uint32_t threads = 1;
  std::uint32_t shards = 1;
};

struct SimResult {
  CacheStats stats;
  DailySeries daily;
  /// Peak cache occupancy — for an infinite cache this is MaxNeeded, the
  /// size at which no removal would ever occur (Experiment 1).
  std::uint64_t max_used_bytes = 0;
  SourceFootprint footprint;
  AvailabilityStats availability;
  ConcurrencyFootprint concurrency;
};

/// Debug knob: when `interval` > 0 the simulator runs a full invariant
/// audit (Cache::audit and friends) every `interval` requests and again at
/// end of trace, throwing std::runtime_error with the report on the first
/// violation. Costs O(n log n) per sweep — leave at 0 for measurements.
struct SimAudit {
  std::uint64_t interval = 0;
};

/// Run `source` against a cache of `capacity_bytes` (0 = infinite). The
/// source is consumed (single pass).
///
/// `obs` (nullptr = disabled) records the run: cache events stream through
/// the recorder's bus, final stats publish into its registry
/// (publish_stats), the per-day HR/byte-HR curve lands in the "sim" time
/// series, and the run plus each simulated day get sim-time spans.
/// Recording is observation only — SimResult is bit-identical with `obs`
/// set or null (tests/test_obs.cpp), and the disabled path costs one
/// pointer test per wiring point (bench_perf obs leg, gate <= 2%).
/// `admission` (empty = always-admit) is handed to CacheConfig verbatim —
/// the cache owns the instance it builds (src/zoo/admission.h study legs).
[[nodiscard]] SimResult simulate(RequestSource& source, std::uint64_t capacity_bytes,
                                 const PolicyFactory& make_policy,
                                 PeriodicSweepConfig periodic = {}, SimAudit audit = {},
                                 ObsRecorder* obs = nullptr, AdmissionFactory admission = {});

/// Materialized adapter for multi-pass callers.
[[nodiscard]] SimResult simulate(const Trace& trace, std::uint64_t capacity_bytes,
                                 const PolicyFactory& make_policy,
                                 PeriodicSweepConfig periodic = {}, SimAudit audit = {},
                                 ObsRecorder* obs = nullptr, AdmissionFactory admission = {});

/// Deterministic sharded replay: the same streaming loop as simulate(),
/// but against a ShardedCache of `shards` partitions, single-threaded in
/// trace order. With shards == 1 the result is bit-identical to simulate()
/// (same capacity, same default seed, same policy stream); with more
/// shards it is the reference the concurrent load generator's merged
/// aggregates are checked against. Runs the full ShardedCache::audit
/// (per-shard sweeps + routing + stats-merge reconciliation) on the
/// SimAudit schedule.
[[nodiscard]] SimResult simulate_sharded(RequestSource& source, std::uint64_t capacity_bytes,
                                         const PolicyFactory& make_policy, std::uint32_t shards,
                                         PeriodicSweepConfig periodic = {}, SimAudit audit = {},
                                         ObsRecorder* obs = nullptr,
                                         AdmissionFactory admission = {});
[[nodiscard]] SimResult simulate_sharded(const Trace& trace, std::uint64_t capacity_bytes,
                                         const PolicyFactory& make_policy, std::uint32_t shards,
                                         PeriodicSweepConfig periodic = {}, SimAudit audit = {},
                                         ObsRecorder* obs = nullptr,
                                         AdmissionFactory admission = {});

/// Infinite-cache run: the theoretical maxima of Experiment 1.
[[nodiscard]] SimResult simulate_infinite(RequestSource& source);
[[nodiscard]] SimResult simulate_infinite(const Trace& trace);

struct TwoLevelSimResult {
  TwoLevelCache::HierarchyStats stats;
  DailySeries l1_daily;
  /// L2 daily series with *all* requests as denominator (Figs 16-18).
  DailySeries l2_daily;
};

/// L1 finite / L2 infinite hierarchy (Experiment 3).
[[nodiscard]] TwoLevelSimResult simulate_two_level(RequestSource& source,
                                                   std::uint64_t l1_capacity,
                                                   const PolicyFactory& l1_policy,
                                                   const PolicyFactory& l2_policy,
                                                   SimAudit audit = {});
[[nodiscard]] TwoLevelSimResult simulate_two_level(const Trace& trace,
                                                   std::uint64_t l1_capacity,
                                                   const PolicyFactory& l1_policy,
                                                   const PolicyFactory& l2_policy,
                                                   SimAudit audit = {});

struct PartitionedSimResult {
  /// Per-class daily series where the denominator is *all* requests
  /// ("audio WHR is audio hit bytes over all requested bytes", §4.7).
  DailySeries audio_daily;
  DailySeries non_audio_daily;
  CacheStats audio_stats;
  CacheStats non_audio_stats;
};

/// Audio/non-audio split cache (Experiment 4).
[[nodiscard]] PartitionedSimResult simulate_partitioned_audio(
    RequestSource& source, std::uint64_t total_capacity, double audio_fraction,
    const PolicyFactory& make_policy, SimAudit audit = {});
[[nodiscard]] PartitionedSimResult simulate_partitioned_audio(
    const Trace& trace, std::uint64_t total_capacity, double audio_fraction,
    const PolicyFactory& make_policy, SimAudit audit = {});

/// Audio vs non-audio infinite-cache reference curves for Figs 19-20
/// (the "Infinite Cache Audio WHR" line).
struct ClassWhrReference {
  DailySeries audio_daily;
  DailySeries non_audio_daily;
};
[[nodiscard]] ClassWhrReference simulate_infinite_by_class(RequestSource& source);
[[nodiscard]] ClassWhrReference simulate_infinite_by_class(const Trace& trace);

}  // namespace wcs
