// The paper's four experiments (Table 5), as reusable runners. Benches and
// examples render the returned structures; integration tests assert the
// paper's qualitative findings on them.
//
// Every function that sweeps independent (policy, capacity) cells takes a
// trailing ParallelRunner& (default: the WCS_JOBS-sized shared pool) and
// fans the cells out across it. Results are collected in submission order
// and each cell's RNG seeding is untouched, so serial (jobs=1) and
// parallel runs produce bit-identical tables — the determinism contract
// tests/test_runner.cpp enforces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/keys.h"
#include "src/sim/runner.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace wcs {

using OptSeries = std::vector<std::optional<double>>;

// ---- Experiment 1: infinite cache (Figs 3-7, MaxNeeded table) -----------
struct Experiment1Result {
  std::string workload;
  std::uint64_t max_needed = 0;  // bytes for zero replacements (§4.1)
  double overall_hr = 0.0;
  double overall_whr = 0.0;
  double mean_daily_hr = 0.0;
  double mean_daily_whr = 0.0;
  OptSeries smoothed_hr;   // 7-recorded-day MA, per calendar day
  OptSeries smoothed_whr;
};
[[nodiscard]] Experiment1Result run_experiment1(const std::string& workload,
                                                const Trace& trace);

// ---- Experiment 2: removal-policy comparison (Figs 8-12, §4.3-4.5) ------
struct PolicyOutcome {
  std::string policy;
  double hr = 0.0;
  double whr = 0.0;
  /// Mean over days of (daily HR / infinite-cache daily HR), percent.
  double hr_pct_of_infinite = 0.0;
  double whr_pct_of_infinite = 0.0;
  OptSeries hr_ratio_curve;   // the Figs 8-12 series
  OptSeries whr_ratio_curve;
};
struct Experiment2Result {
  std::string workload;
  double cache_fraction = 0.0;     // of MaxNeeded
  std::uint64_t capacity_bytes = 0;
  std::vector<PolicyOutcome> outcomes;
};
/// Run one finite-cache simulation per KeySpec — each spec is one parallel
/// cell. `infinite` must be the Experiment 1 result for the same trace.
[[nodiscard]] Experiment2Result run_experiment2(const std::string& workload,
                                                const Trace& trace,
                                                const Experiment1Result& infinite,
                                                double cache_fraction,
                                                const std::vector<KeySpec>& specs,
                                                ParallelRunner& runner = ParallelRunner::shared());

/// Literature policies (Table 3 + LRU-MIN + Pitkow/Recker with its end-of-
/// day sweep) under the same conditions; each policy is one parallel cell.
[[nodiscard]] Experiment2Result run_experiment2_literature(const std::string& workload,
                                                           const Trace& trace,
                                                           const Experiment1Result& infinite,
                                                           double cache_fraction,
                                                           ParallelRunner& runner = ParallelRunner::shared());

// ---- Secondary-key study (Fig 15) ----------------------------------------
struct SecondaryKeyOutcome {
  std::string secondary;       // secondary key name
  double whr_pct_of_random = 0.0;  // overall mean of the ratio curve
  double hr_pct_of_random = 0.0;
  OptSeries whr_ratio_curve;   // daily smoothed WHR / random-secondary WHR
};
struct SecondaryKeyResult {
  std::string workload;
  Key primary = Key::kLog2Size;
  std::vector<SecondaryKeyOutcome> outcomes;
};
[[nodiscard]] SecondaryKeyResult run_secondary_key_study(
    const std::string& workload, const Trace& trace, double cache_fraction,
    Key primary = Key::kLog2Size, ParallelRunner& runner = ParallelRunner::shared());

// ---- Experiment 3: two-level cache (Figs 16-18) ---------------------------
struct Experiment3Result {
  std::string workload;
  double l1_fraction = 0.0;
  std::uint64_t l1_capacity = 0;
  double l1_hr = 0.0;
  double l2_hr = 0.0;   // over all requests
  double l2_whr = 0.0;  // over all bytes
  OptSeries l2_smoothed_hr;
  OptSeries l2_smoothed_whr;
};
[[nodiscard]] Experiment3Result run_experiment3(const std::string& workload,
                                                const Trace& trace, std::uint64_t max_needed,
                                                double l1_fraction);

// ---- Experiment 4: partitioned cache (Figs 19-20) -------------------------
struct Experiment4Curve {
  double audio_fraction = 0.0;  // of the total cache budget
  double audio_whr = 0.0;       // over all requests
  double non_audio_whr = 0.0;
  OptSeries audio_smoothed_whr;
  OptSeries non_audio_smoothed_whr;
};
struct Experiment4Result {
  std::string workload;
  std::uint64_t total_capacity = 0;
  OptSeries infinite_audio_whr;      // reference curves
  OptSeries infinite_non_audio_whr;
  std::vector<Experiment4Curve> curves;  // one per partition split
};
/// Each audio/non-audio split is one parallel cell.
[[nodiscard]] Experiment4Result run_experiment4(const std::string& workload,
                                                const Trace& trace, std::uint64_t max_needed,
                                                double cache_fraction,
                                                const std::vector<double>& audio_fractions,
                                                ParallelRunner& runner = ParallelRunner::shared());

/// Capacity for "fraction of MaxNeeded", never zero (zero means infinite).
[[nodiscard]] std::uint64_t fraction_of(std::uint64_t max_needed, double fraction);

// ===== Extensions: the paper's §5 open problems ===========================

// ---- Open problem 1: TYPE and LATENCY sorting keys ------------------------
struct LatencyOutcome {
  std::string policy;
  double hr = 0.0;
  double whr = 0.0;
  /// Fraction of total estimated refetch latency avoided by cache hits —
  /// the "transfer time avoided" measure §1 says the traces could not
  /// support; the synthetic latency model supplies it.
  double latency_savings = 0.0;
};
struct LatencyStudyResult {
  std::string workload;
  std::uint64_t capacity_bytes = 0;
  std::vector<LatencyOutcome> outcomes;
};
/// Compare the extension keys (LATENCY, TYPE+SIZE) against the paper's
/// keys on HR, WHR and latency savings.
[[nodiscard]] LatencyStudyResult run_latency_study(const std::string& workload,
                                                   const Trace& trace,
                                                   std::uint64_t max_needed,
                                                   double cache_fraction);

// ---- Open problem 3: one L2 shared by several L1 caches -------------------
struct SharedL2Result {
  std::string workload;
  int groups = 0;                  // number of client groups / L1 caches
  std::uint64_t l1_capacity = 0;   // per L1
  double l1_hr = 0.0;              // aggregate over all requests
  double shared_l2_hr = 0.0;       // one L2 behind all L1s
  double shared_l2_whr = 0.0;
  double dedicated_l2_hr = 0.0;    // one private L2 per L1 (baseline)
  double dedicated_l2_whr = 0.0;
};
/// Clients are partitioned into `groups` round-robin; each group owns an
/// L1 (SIZE policy, l1_fraction of MaxNeeded split evenly). The shared
/// configuration funnels all L1 misses into one infinite L2; the dedicated
/// baseline gives each group its own. The difference isolates the
/// cross-group commonality the paper asks about.
[[nodiscard]] SharedL2Result run_shared_l2_study(const std::string& workload,
                                                 const Trace& trace,
                                                 std::uint64_t max_needed,
                                                 double l1_fraction, int groups);

}  // namespace wcs
