// Parallel experiment runner.
//
// The paper's methodology is a grid — 36 key combinations x 5 workloads x
// several cache sizes — and every cell is an independent simulation: its
// randomness comes from the workload trace and per-cache seeds fixed at
// construction, never from cross-cell state. ParallelRunner fans such
// cells out across a fixed pool of worker threads while keeping results
// *deterministic*: submit() hands back a std::future per cell and helpers
// collect them in submission order, so the assembled result table is
// bit-identical whatever the job count (see DESIGN.md "Determinism
// contract of the parallel runner").
//
// Sizing: ParallelRunner{jobs}; jobs = 0 reads the WCS_JOBS environment
// variable, falling back to std::thread::hardware_concurrency().
//
// Nesting: a task running on a pool worker may itself call submit() on the
// same runner — the nested task executes inline on that worker instead of
// queueing, so a task can never block on a future that no free worker
// would ever run (the classic pool self-deadlock). With jobs == 1 every
// submit() executes inline at the call site, making the serial path a
// plain loop in disguise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wcs {

class ParallelRunner {
 public:
  /// A pool of `jobs` workers; jobs == 0 means jobs_from_env(). A runner
  /// with 1 job spawns no threads and runs every task inline.
  explicit ParallelRunner(unsigned jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Schedule one cell; the future yields its result (or rethrows its
  /// exception). Executes inline when the pool has a single job or when
  /// called from one of this runner's own workers.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn&>> submit(Fn fn) {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    if (jobs_ <= 1 || on_worker_thread()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return future;
  }

  /// Fan out `count` cells produced by make_cell(index) and collect their
  /// results in index order — the deterministic gather used by the
  /// experiment runners. Exceptions propagate from the first failing cell.
  template <typename MakeCell>
  [[nodiscard]] auto map(std::size_t count, MakeCell make_cell)
      -> std::vector<std::invoke_result_t<std::invoke_result_t<MakeCell&, std::size_t>&>> {
    using Cell = std::invoke_result_t<MakeCell&, std::size_t>;
    using Result = std::invoke_result_t<Cell&>;
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) futures.push_back(submit(make_cell(i)));
    std::vector<Result> results;
    results.reserve(count);
    for (auto& future : futures) results.push_back(future.get());
    return results;
  }

  /// WCS_JOBS (>= 1), else std::thread::hardware_concurrency(), else 1.
  [[nodiscard]] static unsigned jobs_from_env() noexcept;

  /// Process-wide runner sized by jobs_from_env() — what the experiment
  /// runners use when no explicit runner is passed. Constructed on first
  /// use; WCS_JOBS is read at that moment.
  [[nodiscard]] static ParallelRunner& shared();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();
  [[nodiscard]] bool on_worker_thread() const noexcept;

  unsigned jobs_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace wcs
