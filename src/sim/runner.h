// Parallel experiment runner.
//
// The paper's methodology is a grid — 36 key combinations x 5 workloads x
// several cache sizes — and every cell is an independent simulation: its
// randomness comes from the workload trace and per-cache seeds fixed at
// construction, never from cross-cell state. ParallelRunner fans such
// cells out across a fixed pool of worker threads while keeping results
// *deterministic*: submit() hands back a std::future per cell and helpers
// collect them in submission order, so the assembled result table is
// bit-identical whatever the job count (see DESIGN.md "Determinism
// contract of the parallel runner").
//
// Sizing: ParallelRunner{jobs}; jobs = 0 reads the WCS_JOBS environment
// variable, falling back to std::thread::hardware_concurrency().
//
// Nesting: a task running on a pool worker may itself call submit() on the
// same runner — the nested task executes inline on that worker instead of
// queueing, so a task can never block on a future that no free worker
// would ever run (the classic pool self-deadlock). With jobs == 1 every
// submit() executes inline at the call site, making the serial path a
// plain loop in disguise.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/obs/span.h"
#include "src/util/thread_annotations.h"

namespace wcs {

class ParallelRunner {
 public:
  /// A pool of `jobs` workers; jobs == 0 means jobs_from_env(). A runner
  /// with 1 job spawns no threads and runs every task inline.
  explicit ParallelRunner(unsigned jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Record a wall-clock span per submitted job into `spans` (nullptr
  /// disables, the default). Spans are labelled "job <seq>" in submission
  /// order and tracked per worker thread, so the Chrome trace export shows
  /// pool utilization. Set before submitting; the recorder must outlive
  /// every job. Profiling only — results and gather order are unaffected.
  void set_span_recorder(SpanRecorder* spans) noexcept { spans_ = spans; }

  /// Schedule one cell; the future yields its result (or rethrows its
  /// exception). Executes inline when the pool has a single job or when
  /// called from one of this runner's own workers.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn&>> submit(Fn fn) {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    const std::uint64_t job = job_seq_.fetch_add(1, std::memory_order_relaxed);
    if (jobs_ <= 1 || on_worker_thread()) {
      run_job(*task, job);
    } else {
      enqueue([this, task, job] { run_job(*task, job); });
    }
    return future;
  }

  /// Fan out `count` cells produced by make_cell(index) and collect their
  /// results in index order — the deterministic gather used by the
  /// experiment runners. Exceptions propagate from the first failing cell.
  template <typename MakeCell>
  [[nodiscard]] auto map(std::size_t count, MakeCell make_cell)
      -> std::vector<std::invoke_result_t<std::invoke_result_t<MakeCell&, std::size_t>&>> {
    using Cell = std::invoke_result_t<MakeCell&, std::size_t>;
    using Result = std::invoke_result_t<Cell&>;
    std::vector<std::future<Result>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) futures.push_back(submit(make_cell(i)));
    std::vector<Result> results;
    results.reserve(count);
    for (auto& future : futures) results.push_back(future.get());
    return results;
  }

  /// WCS_JOBS (>= 1), else std::thread::hardware_concurrency(), else 1.
  [[nodiscard]] static unsigned jobs_from_env() noexcept;

  /// Process-wide runner sized by jobs_from_env() — what the experiment
  /// runners use when no explicit runner is passed. Constructed on first
  /// use; WCS_JOBS is read at that moment.
  [[nodiscard]] static ParallelRunner& shared();

 private:
  void enqueue(std::function<void()> task) WCS_EXCLUDES(mutex_);
  void worker_loop(unsigned index) WCS_EXCLUDES(mutex_);
  [[nodiscard]] bool on_worker_thread() const noexcept;
  /// Track of the calling thread: worker index + 1 on a pool worker, 0 on
  /// the submitting thread (inline execution).
  [[nodiscard]] static unsigned current_track() noexcept;

  /// Execute one cell, wrapped in a wall span when profiling is on.
  template <typename Task>
  void run_job(Task& task, std::uint64_t job) {
    SpanRecorder* spans = spans_;
    if (spans == nullptr) {
      task();
      return;
    }
    const SpanRecorder::WallScope scope{spans, "job " + std::to_string(job),
                                        current_track()};
    task();  // a packaged_task: exceptions land in the cell's future
  }

  unsigned jobs_ = 1;
  /// Immutable after the constructor returns; workers never touch it.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ WCS_GUARDED_BY(mutex_);
  bool stopping_ WCS_GUARDED_BY(mutex_) = false;
  CondVar ready_;
  std::atomic<SpanRecorder*> spans_{nullptr};
  std::atomic<std::uint64_t> job_seq_{0};
};

}  // namespace wcs
