// Mutation tests for the invariant-audit layer (src/core/audit.h).
//
// Each test drives a cache into a healthy state, verifies a clean audit,
// then deliberately corrupts one internal structure through AuditTamper and
// asserts the audit names that corruption. An auditor that cannot detect a
// seeded fault is weaker than no auditor — it certifies broken state.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "src/core/cache.h"
#include "src/core/expiry.h"
#include "src/core/lru_min.h"
#include "src/core/partitioned_cache.h"
#include "src/core/policy.h"
#include "src/core/sharded_cache.h"
#include "src/core/sorted_policy.h"
#include "src/core/two_level.h"
#include "src/sim/simulator.h"
#include "src/zoo/gds.h"
#include "src/zoo/selector.h"
#include "src/zoo/sketch.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

namespace wcs {

// Test-only backdoor into private state, befriended by the core classes.
// Every method here *breaks* an invariant on purpose.
struct AuditTamper {
  static std::uint64_t& used_bytes(Cache& cache) { return cache.used_bytes_; }
  static CacheEntry& entry(Cache& cache, UrlId url) { return *cache.entries_.find(url); }
  static CacheStats& stats(Cache& cache) { return cache.stats_; }
  static Cache& l2(TwoLevelCache& hierarchy) { return hierarchy.l2_; }
  static Cache& partition(PartitionedCache& cache, std::size_t i) {
    return cache.caches_.at(i);
  }

  /// Skews `url`'s stored primary rank column and re-sifts — the heap stays
  /// internally consistent, but disagrees with the declared key comparator
  /// (the recomputed rank).
  static void skew_rank(SortedPolicy& policy, UrlId url, std::int64_t delta) {
    const std::uint32_t slot = policy.table_.find(url);
    policy.rank_cols_[0][slot] += delta;
    policy.heap_.update(slot);
  }

  /// Removes `url`'s slot from the order heap only — the table still maps
  /// it, so eviction would never consider it.
  static void drop_from_order(SortedPolicy& policy, UrlId url) {
    policy.heap_.erase(policy.table_.find(url));
  }

  /// Swaps the heap root with the tail (position column kept in step) —
  /// a pure heap-order violation with every other structure intact.
  static void corrupt_heap_order(SortedPolicy& policy) {
    auto& heap = policy.heap_.heap_;
    std::swap(heap.front(), heap.back());
    policy.heap_pos_[heap.front()] = 0;
    policy.heap_pos_[heap.back()] = static_cast<std::uint32_t>(heap.size() - 1);
  }

  /// Plants an out-of-range slot on the arena free list.
  static void corrupt_arena_free_list(SortedPolicy& policy) {
    policy.arena_.free_.push_back(policy.arena_.capacity() + 5);
  }

  /// Redirects `url`'s table mapping at another live slot — the table and
  /// the slot's stored url disagree.
  static void remap_table_slot(SortedPolicy& policy, UrlId url, UrlId other) {
    policy.table_.set(url, policy.table_.find(other));
  }

  // Sharded backdoors. Tampering runs strictly single-threaded, and the
  // whole point is to mutate state behind the lock the auditor relies on —
  // the analysis cannot model a deliberate discipline violation.
  static Cache& shard(ShardedCache& cache, std::size_t i) WCS_NO_THREAD_SAFETY_ANALYSIS {
    return cache.shards_.at(i)->cache;
  }
  static std::uint64_t& shard_dispatched_requests(ShardedCache& cache, std::size_t i)
      WCS_NO_THREAD_SAFETY_ANALYSIS {
    return cache.shards_.at(i)->dispatched_requests;
  }
  static std::uint64_t& shard_dispatched_bytes(ShardedCache& cache, std::size_t i)
      WCS_NO_THREAD_SAFETY_ANALYSIS {
    return cache.shards_.at(i)->dispatched_bytes;
  }

  /// Moves `url`'s slot out of its floor(log2(size)) bucket heap — breaking
  /// the size-class thresholds LRU-MIN's T = S, S/2, ... scan relies on.
  static void misbucket(LruMinPolicy& policy, UrlId url, int bucket_delta) {
    const std::uint32_t slot = policy.table_.find(url);
    const int bucket = LruMinPolicy::bucket_of(policy.sizes_[slot]);
    policy.buckets_[static_cast<std::size_t>(bucket)].erase(slot);
    policy.buckets_[static_cast<std::size_t>(bucket + bucket_delta)].push(slot);
  }

  // Zoo backdoors (src/zoo/) — same discipline: each breaks exactly one
  // invariant the corresponding audit_index claims to verify.

  /// Skews `url`'s stored H away from offset + recomputed value (the heap
  /// is re-sifted, so only the stale-value check can notice).
  static void skew_gds_value(GreedyDualPolicy& policy, UrlId url, std::uint64_t delta) {
    const std::uint32_t slot = policy.table_.find(url);
    policy.prios_[slot] += delta;
    policy.by_value_.update(slot);
  }

  /// Drifts the SLRU protected-segment byte tally off the true sum.
  static std::uint64_t& slru_protected_bytes(SlruPolicy& policy) {
    return policy.protected_bytes_;
  }

  /// Drifts the W-TinyLFU window byte tally off the true sum.
  static std::uint64_t& tinylfu_window_bytes(TinyLfuPolicy& policy) {
    return policy.window_bytes_;
  }

  static CountMinSketch& tinylfu_sketch(TinyLfuPolicy& policy) { return policy.sketch_; }

  /// Pushes one sketch counter past the TinyLFU saturation cap.
  static void breach_sketch_cap(CountMinSketch& sketch) {
    sketch.counters_.front() = CountMinSketch::kMaxCount + 1;
  }

  /// Ages the selector's mirrored copy of `url` behind the cache's back.
  static void stale_selector_mirror(ShadowSelectorPolicy& policy, UrlId url,
                                    std::uint64_t size_delta) {
    policy.mirror_.find(url)->size += size_delta;
  }

  /// Drops `url` from the selector's mirror only — a rebuild after the next
  /// switch would silently forget a resident document.
  static void drop_selector_mirror(ShadowSelectorPolicy& policy, UrlId url) {
    policy.mirror_.erase(url);
  }
};

namespace {

constexpr SimTime kHour = kSecondsPerHour;

/// A cache pre-loaded with a few documents of distinct sizes and reuse.
Cache make_loaded_cache(std::unique_ptr<RemovalPolicy> policy,
                        std::uint64_t capacity = 100'000) {
  CacheConfig config;
  config.capacity_bytes = capacity;
  Cache cache{config, std::move(policy)};
  cache.access(1 * kHour, 1, 4'000);
  cache.access(2 * kHour, 2, 900);
  cache.access(3 * kHour, 3, 17'000);
  cache.access(4 * kHour, 4, 64);
  cache.access(5 * kHour, 2, 900);  // hit: moves url 2's ATIME/NREF ranks
  cache.access(6 * kHour, 5, 2'048);
  return cache;
}

TEST(Audit, CleanCacheReportsZeroViolations) {
  Cache cache = make_loaded_cache(make_lru());
  const AuditReport report = cache.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.to_string(), "audit: ok");
}

TEST(Audit, CorruptUsedBytesIsCaught) {
  Cache cache = make_loaded_cache(make_size());
  ASSERT_TRUE(cache.audit().ok());
  AuditTamper::used_bytes(cache) += 3;
  const AuditReport report = cache.audit();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count("cache.used_bytes"), 1u) << report.to_string();
}

TEST(Audit, CorruptEntrySizeIsCaughtByAccountingAndPolicy) {
  Cache cache = make_loaded_cache(make_size());
  ASSERT_TRUE(cache.audit().ok());
  // Shrink a document behind the cache's back: the byte sum no longer
  // matches used_bytes AND the SIZE policy's stored rank goes stale.
  AuditTamper::entry(cache, 3).size -= 1'000;
  const AuditReport report = cache.audit();
  EXPECT_EQ(report.count("cache.used_bytes"), 1u) << report.to_string();
  EXPECT_GE(report.count("policy.sorted.stale_rank"), 1u) << report.to_string();
}

TEST(Audit, CorruptStatsFlowIsCaught) {
  Cache cache = make_loaded_cache(make_lru());
  AuditTamper::stats(cache).hits = AuditTamper::stats(cache).requests + 1;
  EXPECT_EQ(cache.audit().count("cache.stats_hits"), 1u);
}

TEST(Audit, SkewedSortedRankIsCaught) {
  Cache cache = make_loaded_cache(make_size());
  auto& policy = dynamic_cast<SortedPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok());
  // SIZE ranks are -size; push the small url 4 to the front of the removal
  // order. Index and order agree with each other but not the comparator.
  AuditTamper::skew_rank(policy, 4, -1'000'000);
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.sorted.stale_rank"), 1u) << report.to_string();
  EXPECT_EQ(report.count("policy.sorted.victim_order"), 1u) << report.to_string();
}

TEST(Audit, DroppedOrderTupleIsCaught) {
  Cache cache = make_loaded_cache(make_lru());
  auto& policy = dynamic_cast<SortedPolicy&>(cache.policy());
  AuditTamper::drop_from_order(policy, 5);
  const AuditReport report = cache.audit();
  EXPECT_EQ(report.count("policy.sorted.order_missing"), 1u) << report.to_string();
  EXPECT_EQ(report.count("policy.sorted.order_count"), 1u) << report.to_string();
}

TEST(Audit, HeapOrderViolationIsCaught) {
  Cache cache = make_loaded_cache(make_lru());
  auto& policy = dynamic_cast<SortedPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok());
  // Swap the heap root with the tail: positions stay consistent, ranks stay
  // fresh, but a child now precedes its parent.
  AuditTamper::corrupt_heap_order(policy);
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.sorted.heap_order"), 1u) << report.to_string();
}

TEST(Audit, ArenaFreeListCorruptionIsCaught) {
  Cache cache = make_loaded_cache(make_lru());
  auto& policy = dynamic_cast<SortedPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok());
  AuditTamper::corrupt_arena_free_list(policy);
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.sorted.arena_free"), 1u) << report.to_string();
}

TEST(Audit, TableSlotDisagreementIsCaught) {
  Cache cache = make_loaded_cache(make_lru());
  auto& policy = dynamic_cast<SortedPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok());
  // Point url 4's table mapping at url 2's slot: the slot's stored url no
  // longer matches the table key that reaches it.
  AuditTamper::remap_table_slot(policy, 4, 2);
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.sorted.table_slot"), 1u) << report.to_string();
}

TEST(Audit, ExpiryStaleEtimeIsCaught) {
  Cache cache = make_loaded_cache(make_expiry_first(make_lru(), 10 * kSecondsPerDay));
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  // Rewind a cached entry's etime behind the wrapper's back: the wrapper's
  // stored etime no longer matches the cache entry.
  AuditTamper::entry(cache, 2).etime -= 1'000;
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.expiry.stale_etime"), 1u) << report.to_string();
}

TEST(Audit, LruMinSizeClassViolationIsCaught) {
  Cache cache = make_loaded_cache(make_lru_min());
  auto& policy = dynamic_cast<LruMinPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok());
  // url 3 (17000 bytes, bucket 14) filed three classes too low: a threshold
  // scan for T in (2^12, 2^14] would now skip a qualifying document.
  AuditTamper::misbucket(policy, 3, -3);
  const AuditReport report = cache.audit();
  EXPECT_EQ(report.count("policy.lru_min.size_class"), 1u) << report.to_string();
}

TEST(Audit, LruMinCleanAfterMixedWorkload) {
  Cache cache = make_loaded_cache(make_lru_min(), 20'000);  // forces evictions
  cache.access(7 * kHour, 6, 15'000);
  cache.access(8 * kHour, 7, 3'000);
  const AuditReport report = cache.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Audit, PitkowReckerStaleKeyIsCaught) {
  Cache cache = make_loaded_cache(make_pitkow_recker());
  ASSERT_TRUE(cache.audit().ok());
  AuditTamper::entry(cache, 1).atime += 3 * kSecondsPerDay;
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.pitkow_recker.stale_key"), 1u) << report.to_string();
}

TEST(Audit, TwoLevelInclusionViolationIsCaught) {
  CacheConfig l1_config;
  l1_config.capacity_bytes = 10'000;
  CacheConfig l2_config;  // infinite
  TwoLevelCache hierarchy{l1_config, make_lru(), l2_config, make_lru()};
  hierarchy.access(1 * kHour, 1, 2'000);
  hierarchy.access(2 * kHour, 2, 3'000);
  ASSERT_TRUE(hierarchy.audit().ok()) << hierarchy.audit().to_string();

  // Purge a document from the infinite L2 while L1 still holds it.
  AuditTamper::l2(hierarchy).erase(1);
  const AuditReport report = hierarchy.audit();
  EXPECT_EQ(report.count("two_level.inclusion"), 1u) << report.to_string();
}

TEST(Audit, PartitionedRoutingViolationIsCaught) {
  PartitionedCache cache =
      PartitionedCache::audio_split(100'000, 0.5, [] { return make_lru(); });
  cache.access(1 * kHour, 1, 5'000, FileType::kAudio);
  cache.access(2 * kHour, 2, 1'000, FileType::kText);
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();

  // Smuggle an audio document into the non-audio partition.
  AuditTamper::partition(cache, 1).access(3 * kHour, 3, 2'000, FileType::kAudio);
  const AuditReport report = cache.audit();
  EXPECT_EQ(report.count("partitioned.routing"), 1u) << report.to_string();
}

TEST(Audit, ReportScopingAndCounting) {
  AuditReport inner;
  inner.add("used_bytes", "off by 3");
  inner.add("used_bytes", "off by 7");
  AuditReport outer;
  outer.absorb("l1", inner);
  outer.add("routing", "misplaced");
  EXPECT_FALSE(outer.ok());
  EXPECT_EQ(outer.count("l1.used_bytes"), 2u);
  EXPECT_EQ(outer.count("routing"), 1u);
  EXPECT_EQ(outer.count("absent"), 0u);
  EXPECT_NE(outer.to_string().find("[l1.used_bytes] off by 3"), std::string::npos);
}

// --- the Simulator's debug audit flag ------------------------------------

Trace small_trace() {
  Trace trace;
  Request r;
  for (int i = 0; i < 200; ++i) {
    r.time = static_cast<SimTime>(i) * kHour;
    r.url = static_cast<UrlId>(i % 17);
    r.size = 500 + static_cast<std::uint64_t>(i % 5) * 700;
    trace.add(r);
  }
  return trace;
}

TEST(Audit, SimulatorAuditFlagPassesOnHealthyRuns) {
  const Trace trace = small_trace();
  const SimAudit audit{/*interval=*/25};
  EXPECT_NO_THROW({
    const SimResult r = simulate(trace, 6'000, [] { return make_size(); }, {}, audit);
    EXPECT_GT(r.stats.requests, 0u);
  });
  EXPECT_NO_THROW(
      simulate_two_level(trace, 4'000, [] { return make_lru(); },
                         [] { return make_lru(); }, audit));
  EXPECT_NO_THROW(
      simulate_partitioned_audio(trace, 8'000, 0.5, [] { return make_lru(); }, audit));
}

// A policy that lies: it reports documents it no longer tracks, so the
// audit must flag it (and the simulator's audit flag must throw).
class AmnesiacPolicy final : public RemovalPolicy {
 public:
  void on_insert(const CacheEntry& entry) override { inner_.on_insert(entry); }
  void on_hit(const CacheEntry& entry) override { inner_.on_hit(entry); }
  void on_remove(const CacheEntry& entry) override {
    inner_.on_remove(entry);
    ++forgotten_;
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override {
    return inner_.choose_victim(ctx);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "amnesiac"; }
  void audit_index(const EntryMap& entries, AuditReport& report) const override {
    inner_.audit_index(entries, report);
    if (forgotten_ > 0) report.add("amnesiac.forgot", "dropped removal bookkeeping");
  }

 private:
  SortedPolicy inner_{KeySpec{{Key::kAtime}}};
  int forgotten_ = 0;
};

TEST(Audit, SimulatorAuditFlagThrowsOnViolation) {
  const Trace trace = small_trace();
  // Capacity small enough to force evictions -> on_remove -> "violation".
  EXPECT_THROW(
      (void)simulate(trace, 2'000, [] { return std::make_unique<AmnesiacPolicy>(); }, {},
                     SimAudit{/*interval=*/10}),
      std::runtime_error);
}

/// A sharded cache warmed with traffic that lands on every shard.
ShardedCache make_loaded_sharded_cache(std::uint32_t shards) {
  ShardedCacheConfig config;
  config.shards = shards;
  config.capacity_bytes = 100'000 * shards;
  ShardedCache cache{config, [] { return make_size(); }};
  for (UrlId url = 0; url < 40; ++url) {
    (void)cache.access(static_cast<SimTime>(url) * kHour, url, 500 + 37 * url);
  }
  for (UrlId url = 0; url < 40; url += 3) {
    (void)cache.access((40 + static_cast<SimTime>(url)) * kHour, url, 500 + 37 * url);
  }
  return cache;
}

TEST(Audit, ShardedCleanCacheReportsZeroViolations) {
  ShardedCache cache = make_loaded_sharded_cache(4);
  const AuditReport report = cache.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Audit, ShardedStatsMergeTamperIsCaught) {
  // Inflate one shard's own request counter: the merge would silently
  // over-count, so the reconciliation against the router's dispatch tally
  // must name the broken shard.
  ShardedCache cache = make_loaded_sharded_cache(4);
  ASSERT_TRUE(cache.audit().ok());
  AuditTamper::stats(AuditTamper::shard(cache, 2)).requests += 5;
  const AuditReport report = cache.audit();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count("sharded.stats_merge"), 1u) << report.to_string();
}

TEST(Audit, ShardedDispatchTallyTamperIsCaught) {
  // The symmetric failure: the router's tally drifts from the shard's
  // counters (a lost or double-dispatched request).
  ShardedCache cache = make_loaded_sharded_cache(4);
  ASSERT_TRUE(cache.audit().ok());
  AuditTamper::shard_dispatched_requests(cache, 1) += 1;
  AuditTamper::shard_dispatched_bytes(cache, 3) += 99;
  const AuditReport report = cache.audit();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count("sharded.stats_merge"), 2u) << report.to_string();
}

TEST(Audit, ShardedRoutingViolationIsCaught) {
  // Feed a shard a URL that hashes elsewhere — bypassing the router, the
  // only way a misrouted entry can exist. The routing sweep must flag it.
  ShardedCache cache = make_loaded_sharded_cache(4);
  ASSERT_TRUE(cache.audit().ok());
  UrlId foreign = 0;
  while (shard_of_url(foreign, 4) == 0) ++foreign;
  Cache& shard0 = AuditTamper::shard(cache, 0);
  (void)shard0.access(50 * kHour, foreign, 1'234);
  // The direct access also skewed shard 0's stats against its dispatch
  // tally, so both findings appear; the routing one is what's under test.
  const AuditReport report = cache.audit();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count("sharded.routing"), 1u) << report.to_string();
}

// ---- Zoo policy audits (src/zoo/) -----------------------------------------

TEST(Audit, ZooGdsSkewedValueIsCaught) {
  Cache cache = make_loaded_cache(make_gds());
  auto& policy = dynamic_cast<GreedyDualPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::skew_gds_value(policy, 4, 1'000'000);
  const AuditReport report = cache.audit();
  EXPECT_GE(report.count("policy.gds.stale_value"), 1u) << report.to_string();
}

TEST(Audit, ZooSlruProtectedTallyDriftIsCaught) {
  // make_loaded_cache re-references url 2, so the protected segment is
  // non-empty and its byte tally is live.
  Cache cache = make_loaded_cache(make_slru());
  auto& policy = dynamic_cast<SlruPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::slru_protected_bytes(policy) += 512;
  EXPECT_EQ(cache.audit().count("policy.slru.protected_bytes"), 1u);
}

TEST(Audit, ZooTinyLfuWindowTallyDriftIsCaught) {
  Cache cache = make_loaded_cache(make_tinylfu());
  auto& policy = dynamic_cast<TinyLfuPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::tinylfu_window_bytes(policy) += 64;
  EXPECT_EQ(cache.audit().count("policy.tinylfu.window_bytes"), 1u);
}

TEST(Audit, ZooSketchSaturationBreachIsCaught) {
  Cache cache = make_loaded_cache(make_tinylfu());
  auto& policy = dynamic_cast<TinyLfuPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::breach_sketch_cap(AuditTamper::tinylfu_sketch(policy));
  EXPECT_GE(cache.audit().count("policy.sketch.saturation"), 1u);
}

TEST(Audit, ZooSelectorMirrorStaleIsCaught) {
  Cache cache = make_loaded_cache(make_adaptive_selector());
  auto& policy = dynamic_cast<ShadowSelectorPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::stale_selector_mirror(policy, 3, 128);
  EXPECT_EQ(cache.audit().count("policy.selector.mirror_stale"), 1u);
}

TEST(Audit, ZooSelectorMirrorDropIsCaught) {
  Cache cache = make_loaded_cache(make_adaptive_selector());
  auto& policy = dynamic_cast<ShadowSelectorPolicy&>(cache.policy());
  ASSERT_TRUE(cache.audit().ok()) << cache.audit().to_string();
  AuditTamper::drop_selector_mirror(policy, 3);
  const AuditReport report = cache.audit();
  EXPECT_EQ(report.count("policy.selector.mirror_count"), 1u) << report.to_string();
  EXPECT_EQ(report.count("policy.selector.mirror_missing"), 1u) << report.to_string();
}

}  // namespace
}  // namespace wcs
