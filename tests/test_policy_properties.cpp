// Property suite run against EVERY removal policy: the cache invariants
// that must hold regardless of which document a policy picks.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/core/keys.h"
#include "src/core/policy.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

struct PolicyCase {
  std::string name;
  std::function<std::unique_ptr<RemovalPolicy>()> factory;
};

std::vector<PolicyCase> all_policies() {
  std::vector<PolicyCase> cases;
  for (const KeySpec& spec : KeySpec::experiment2_grid()) {
    cases.push_back({spec.name(), [spec] { return make_sorted_policy(spec); }});
  }
  cases.push_back({"LRU-MIN", [] { return make_lru_min(); }});
  cases.push_back({"Pitkow-Recker", [] { return make_pitkow_recker(); }});
  cases.push_back({"Hyper-G", [] { return make_hyper_g(); }});
  cases.push_back({"RANDOM", [] { return make_random(); }});
  return cases;
}

class PolicyProperty : public ::testing::TestWithParam<PolicyCase> {};

// A deterministic random workload with repeats, varied sizes and occasional
// size changes, driven through a small cache.
struct Step {
  SimTime time;
  UrlId url;
  std::uint64_t size;
};

std::vector<Step> random_workload(std::uint64_t seed, std::size_t steps) {
  Rng rng{seed};
  std::vector<Step> out;
  std::map<UrlId, std::uint64_t> sizes;
  SimTime now = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    now += static_cast<SimTime>(rng.below(4 * kSecondsPerHour));
    const auto url = static_cast<UrlId>(rng.below(60));
    auto [it, inserted] = sizes.emplace(url, 16 + rng.below(5000));
    if (!inserted && rng.chance(0.05)) it->second += 7;  // document modified
    out.push_back({now, url, it->second});
  }
  return out;
}

TEST_P(PolicyProperty, CacheNeverExceedsCapacity) {
  CacheConfig config;
  config.capacity_bytes = 12'000;
  Cache cache{config, GetParam().factory()};
  for (const Step& step : random_workload(1, 3000)) {
    cache.access(step.time, step.url, step.size);
    ASSERT_LE(cache.used_bytes(), config.capacity_bytes);
  }
}

TEST_P(PolicyProperty, HitImpliesPreviouslyInserted) {
  CacheConfig config;
  config.capacity_bytes = 12'000;
  Cache cache{config, GetParam().factory()};
  std::map<UrlId, std::uint64_t> last_admitted;  // url -> size, while cached
  for (const Step& step : random_workload(2, 3000)) {
    const bool was_cached = cache.contains(step.url);
    const auto* before = cache.find(step.url);
    const bool expect_hit = was_cached && before->size == step.size;
    const AccessResult result = cache.access(step.time, step.url, step.size);
    ASSERT_EQ(result.hit, expect_hit) << "url " << step.url;
  }
  (void)last_admitted;
}

TEST_P(PolicyProperty, UsedBytesMatchesEntrySum) {
  CacheConfig config;
  config.capacity_bytes = 9'000;
  Cache cache{config, GetParam().factory()};
  const auto workload = random_workload(3, 2000);
  for (const Step& step : workload) cache.access(step.time, step.url, step.size);
  std::uint64_t sum = 0;
  for (const CacheEntry& entry : cache.snapshot()) sum += entry.size;
  ASSERT_EQ(sum, cache.used_bytes());
  ASSERT_EQ(cache.snapshot().size(), cache.entry_count());
}

TEST_P(PolicyProperty, DeterministicAcrossRuns) {
  const auto run = [&](std::uint64_t seed) {
    CacheConfig config;
    config.capacity_bytes = 10'000;
    config.seed = seed;
    Cache cache{config, GetParam().factory()};
    std::uint64_t hits = 0;
    for (const Step& step : random_workload(4, 2500)) {
      if (cache.access(step.time, step.url, step.size).hit) ++hits;
    }
    return hits;
  };
  ASSERT_EQ(run(77), run(77));
}

TEST_P(PolicyProperty, StatsAreConsistent) {
  CacheConfig config;
  config.capacity_bytes = 15'000;
  Cache cache{config, GetParam().factory()};
  for (const Step& step : random_workload(5, 3000)) {
    cache.access(step.time, step.url, step.size);
  }
  const CacheStats& stats = cache.stats();
  ASSERT_EQ(stats.requests, 3000u);
  ASSERT_LE(stats.hits, stats.requests);
  ASSERT_LE(stats.hit_bytes, stats.requested_bytes);
  ASSERT_GE(stats.max_used_bytes, cache.used_bytes());
  ASSERT_LE(stats.max_used_bytes, config.capacity_bytes);
  // insertions - evictions - (entries removed by size change) == live docs.
  ASSERT_EQ(stats.insertions - stats.evictions - stats.size_change_misses,
            cache.entry_count());
}

TEST_P(PolicyProperty, SurvivesTinyCache) {
  // A cache barely bigger than single documents: constant eviction churn.
  CacheConfig config;
  config.capacity_bytes = 600;
  Cache cache{config, GetParam().factory()};
  for (const Step& step : random_workload(6, 2000)) {
    cache.access(step.time, step.url, step.size % 512 + 1);
    ASSERT_LE(cache.used_bytes(), config.capacity_bytes);
  }
}

TEST_P(PolicyProperty, EraseLeavesConsistentState) {
  CacheConfig config;
  config.capacity_bytes = 20'000;
  Cache cache{config, GetParam().factory()};
  Rng rng{7};
  for (const Step& step : random_workload(8, 1500)) {
    cache.access(step.time, step.url, step.size);
    if (rng.chance(0.05)) cache.erase(static_cast<UrlId>(rng.below(60)));
  }
  std::uint64_t sum = 0;
  for (const CacheEntry& entry : cache.snapshot()) sum += entry.size;
  ASSERT_EQ(sum, cache.used_bytes());
}

TEST_P(PolicyProperty, AuditStaysCleanThroughChurn) {
  // The full invariant sweep (byte accounting + policy-index agreement with
  // the declared comparator, src/core/audit.h) after every phase of a
  // churny workload with erases and size changes.
  CacheConfig config;
  config.capacity_bytes = 8'000;
  Cache cache{config, GetParam().factory()};
  Rng rng{9};
  std::size_t step_index = 0;
  for (const Step& step : random_workload(10, 2000)) {
    cache.access(step.time, step.url, step.size);
    if (rng.chance(0.03)) cache.erase(static_cast<UrlId>(rng.below(60)));
    if (++step_index % 250 == 0) {
      const AuditReport report = cache.audit();
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }
  const AuditReport report = cache.audit();
  ASSERT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty, ::testing::ValuesIn(all_policies()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wcs
