#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wcs {
namespace {

TEST(LinearHistogram, BinsAndTotals) {
  LinearHistogram hist{0.0, 100.0, 10};
  hist.add(5.0);
  hist.add(15.0);
  hist.add(15.5);
  hist.add(99.9);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 2u);
  EXPECT_EQ(hist.count(9), 1u);
}

TEST(LinearHistogram, ClampsOutliers) {
  LinearHistogram hist{0.0, 10.0, 2};
  hist.add(-5.0);
  hist.add(100.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.total(), 2u);
}

TEST(LinearHistogram, WeightsAccumulate) {
  LinearHistogram hist{0.0, 10.0, 10};
  hist.add(1.0, 5);
  EXPECT_EQ(hist.count(1), 5u);
  EXPECT_EQ(hist.total(), 5u);
}

TEST(LinearHistogram, BinEdges) {
  LinearHistogram hist{0.0, 100.0, 4};
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(hist.bin_lo(3), 75.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(3), 100.0);
}

TEST(LinearHistogram, CumulativeFraction) {
  LinearHistogram hist{0.0, 4.0, 4};
  hist.add(0.5);
  hist.add(1.5);
  hist.add(2.5);
  hist.add(3.5);
  EXPECT_DOUBLE_EQ(hist.cumulative_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(hist.cumulative_fraction(3), 1.0);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 10.0, 0), std::invalid_argument);
}

TEST(Log2Histogram, PowerBuckets) {
  Log2Histogram hist;
  hist.add(0);
  hist.add(1);
  hist.add(2);
  hist.add(3);
  hist.add(1024);
  EXPECT_EQ(hist.count(0), 2u);  // 0 and 1
  EXPECT_EQ(hist.count(1), 2u);  // 2 and 3
  EXPECT_EQ(hist.count(10), 1u);
  EXPECT_EQ(hist.total(), 5u);
}

TEST(Log2Histogram, BinLowerBounds) {
  EXPECT_EQ(Log2Histogram::bin_lo(0), 0u);
  EXPECT_EQ(Log2Histogram::bin_lo(4), 16u);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> values = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 5.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50.0), std::invalid_argument);
}

TEST(MovingAverage, SevenDayWindow) {
  std::vector<double> values(10, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  const auto ma = moving_average(values, 7);
  // The paper plots nothing for days 0-5.
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FALSE(ma[i].has_value());
  ASSERT_TRUE(ma[6].has_value());
  EXPECT_DOUBLE_EQ(*ma[6], 3.0);  // mean of 0..6
  EXPECT_DOUBLE_EQ(*ma[9], 6.0);  // mean of 3..9
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> values = {1.0, 5.0, 9.0};
  const auto ma = moving_average(values, 1);
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_DOUBLE_EQ(*ma[i], values[i]);
}

TEST(MovingAverage, ZeroWindowThrows) {
  EXPECT_THROW(moving_average(std::vector<double>{1.0}, 0), std::invalid_argument);
}

TEST(Gini, UniformIsZero) {
  const std::vector<double> masses(100, 1.0);
  EXPECT_NEAR(gini_coefficient(masses), 0.0, 1e-9);
}

TEST(Gini, ConcentratedIsNearOne) {
  std::vector<double> masses(100, 0.0);
  masses[0] = 1.0;
  EXPECT_GT(gini_coefficient(masses), 0.95);
}

TEST(Gini, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient(zeros), 0.0);
}

}  // namespace
}  // namespace wcs
