// Expiry-first removal (§5 open problem 4).
#include "src/core/expiry.h"

#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

CacheEntry entry(UrlId url, std::uint64_t size, SimTime etime, SimTime atime) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = etime;
  e.atime = atime;
  e.nref = 1;
  return e;
}

EvictionContext at(SimTime now) {
  EvictionContext ctx;
  ctx.now = now;
  return ctx;
}

TEST(Expiry, ExpiredDocumentGoesFirstOldestFirst) {
  ExpiryFirstPolicy policy{make_size(), /*ttl=*/1000};
  policy.on_insert(entry(1, 10, 100, 100));    // expired at now=2000
  policy.on_insert(entry(2, 9999, 500, 500));  // expired too, but newer
  policy.on_insert(entry(3, 10, 1500, 1500));  // fresh
  EXPECT_EQ(policy.choose_victim(at(2000)), 1u);
  EXPECT_EQ(policy.expired_count(2000), 2u);
}

TEST(Expiry, FreshCacheDelegatesToInner) {
  ExpiryFirstPolicy policy{make_size(), /*ttl=*/10'000};
  policy.on_insert(entry(1, 10, 100, 100));
  policy.on_insert(entry(2, 9999, 500, 500));
  // Nothing expired at now=1000: inner SIZE picks the big one.
  EXPECT_EQ(policy.choose_victim(at(1000)), 2u);
  EXPECT_EQ(policy.expired_count(1000), 0u);
}

TEST(Expiry, ZeroTtlDisablesExpiryCheck) {
  ExpiryFirstPolicy policy{make_size(), /*ttl=*/0};
  policy.on_insert(entry(1, 10, 0, 0));
  policy.on_insert(entry(2, 99, 0, 0));
  EXPECT_EQ(policy.choose_victim(at(1'000'000)), 2u);  // pure SIZE
  EXPECT_EQ(policy.expired_count(1'000'000), 0u);
}

TEST(Expiry, RemoveAndHitKeepIndexesConsistent) {
  ExpiryFirstPolicy policy{make_lru(), /*ttl=*/1000};
  const CacheEntry a = entry(1, 10, 100, 100);
  policy.on_insert(a);
  policy.on_insert(entry(2, 10, 200, 200));
  CacheEntry touched = entry(2, 10, 200, 5000);  // hit updates atime only
  policy.on_hit(touched);
  policy.on_remove(a);
  // Only doc 2 remains; fresh at 1100 -> inner LRU chooses it.
  EXPECT_EQ(policy.choose_victim(at(1100)), 2u);
}

TEST(Expiry, NameReflectsComposition) {
  ExpiryFirstPolicy policy{make_lru(), 60};
  EXPECT_EQ(policy.name(), "EXPIRED->ATIME");
}

TEST(Expiry, NullInnerRejected) {
  EXPECT_THROW(ExpiryFirstPolicy(nullptr, 10), std::invalid_argument);
}

TEST(Expiry, WorksInsideCache) {
  CacheConfig config;
  config.capacity_bytes = 300;
  Cache cache{config, make_expiry_first(make_size(), kSecondsPerDay)};
  cache.access(day_start(0), 1, 100);          // will expire
  cache.access(day_start(2) - 10, 2, 100);     // fresh-ish
  // Day 2: inserting forces an eviction; doc 1 is older than a day.
  cache.access(day_start(2), 3, 150);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Expiry, TradeoffExpiryCostsHitRate) {
  // Removing still-useful expired documents cannot raise the URL+size hit
  // rate; it bounds staleness instead.
  const auto run = [](SimTime ttl) {
    CacheConfig config;
    config.capacity_bytes = 5'000;
    Cache cache{config,
                ttl > 0 ? make_expiry_first(make_size(), ttl) : make_size()};
    Rng rng{7};
    for (int i = 0; i < 20'000; ++i) {
      const auto url = static_cast<UrlId>(rng.below(40));
      const SimTime now = i * 600;  // 10-minute spacing
      cache.access(now, url, 100 + (url % 7) * 300);
    }
    return cache.stats().hit_rate();
  };
  const double no_expiry = run(0);
  const double tight_expiry = run(kSecondsPerHour);
  EXPECT_GT(no_expiry, 0.3);
  EXPECT_LE(tight_expiry, no_expiry + 1e-9);
}

}  // namespace
}  // namespace wcs
