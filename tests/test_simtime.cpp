#include "src/util/simtime.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(SimTime, DayOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(86'399), 0);
  EXPECT_EQ(day_of(86'400), 1);
  EXPECT_EQ(day_of(-1), -1);
  EXPECT_EQ(day_of(-86'400), -1);
  EXPECT_EQ(day_of(-86'401), -2);
}

TEST(SimTime, DayStartRoundTrips) {
  for (const std::int64_t d : {0LL, 1LL, 37LL, 190LL}) {
    EXPECT_EQ(day_of(day_start(d)), d);
    EXPECT_EQ(day_of(day_start(d) + kSecondsPerDay - 1), d);
  }
}

TEST(SimTime, SecondOfDay) {
  EXPECT_EQ(second_of_day(0), 0);
  EXPECT_EQ(second_of_day(86'400 + 3661), 3661);
  EXPECT_EQ(second_of_day(-1), 86'399);
}

TEST(SimTime, WeekdayCyclesSevenDays) {
  EXPECT_EQ(weekday_of(day_start(0)), 0);
  EXPECT_EQ(weekday_of(day_start(6)), 6);
  EXPECT_EQ(weekday_of(day_start(7)), 0);
  EXPECT_TRUE(is_weekend(day_start(5)));
  EXPECT_TRUE(is_weekend(day_start(6)));
  EXPECT_FALSE(is_weekend(day_start(4)));
}

TEST(SimTime, ClfTimestampFormat) {
  EXPECT_EQ(to_clf_timestamp(0), "[01/Jan/1995:00:00:00 +0000]");
  EXPECT_EQ(to_clf_timestamp(86'400 + 3661), "[02/Jan/1995:01:01:01 +0000]");
}

TEST(SimTime, ClfTimestampYearBoundary) {
  // 1995 has 365 days; day 365 is 01/Jan/1996.
  EXPECT_EQ(to_clf_timestamp(day_start(365)), "[01/Jan/1996:00:00:00 +0000]");
  // 1996 is a leap year: Feb 29 exists.
  const SimTime feb29_1996 = day_start(365 + 31 + 28);
  EXPECT_EQ(to_clf_timestamp(feb29_1996), "[29/Feb/1996:00:00:00 +0000]");
}

TEST(SimTime, ClfTimestampRoundTrip) {
  for (const SimTime t : {SimTime{0}, SimTime{12'345'678}, SimTime{86'400 * 400 + 7}}) {
    SimTime parsed = -1;
    ASSERT_TRUE(parse_clf_timestamp(to_clf_timestamp(t), parsed));
    EXPECT_EQ(parsed, t);
  }
}

TEST(SimTime, ParseRejectsGarbage) {
  SimTime out = 0;
  EXPECT_FALSE(parse_clf_timestamp("", out));
  EXPECT_FALSE(parse_clf_timestamp("[not/a/date]", out));
  EXPECT_FALSE(parse_clf_timestamp("[32/Jan/1995:00:00:00 +0000]", out));
  EXPECT_FALSE(parse_clf_timestamp("[01/Foo/1995:00:00:00 +0000]", out));
  EXPECT_FALSE(parse_clf_timestamp("[01/Jan/1995:25:00:00 +0000]", out));
  EXPECT_FALSE(parse_clf_timestamp("[29/Feb/1995:00:00:00 +0000]", out));  // not a leap year
}

TEST(SimTime, ParseAcceptsUnbracketed) {
  SimTime out = 0;
  ASSERT_TRUE(parse_clf_timestamp("01/Jan/1995:00:00:10 +0000", out));
  EXPECT_EQ(out, 10);
}

TEST(SimTime, FormatDuration) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(3661), "01:01:01");
  EXPECT_EQ(format_duration(86'400 + 61), "1d 00:01:01");
}

}  // namespace
}  // namespace wcs
