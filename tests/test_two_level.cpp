#include "src/core/two_level.h"

#include <gtest/gtest.h>

#include "src/core/policy.h"

namespace wcs {
namespace {

TwoLevelCache make_hierarchy(std::uint64_t l1_capacity) {
  CacheConfig l1;
  l1.capacity_bytes = l1_capacity;
  CacheConfig l2;  // infinite
  return TwoLevelCache{l1, make_size(), l2, make_lru()};
}

TEST(TwoLevel, MissGoesToBothLevels) {
  TwoLevelCache hierarchy = make_hierarchy(1000);
  const auto result = hierarchy.access(1, 1, 100);
  EXPECT_EQ(result.level, HitLevel::kMiss);
  EXPECT_TRUE(hierarchy.l1().contains(1));
  EXPECT_TRUE(hierarchy.l2().contains(1));
}

TEST(TwoLevel, L1HitDoesNotTouchL2Stats) {
  TwoLevelCache hierarchy = make_hierarchy(1000);
  hierarchy.access(1, 1, 100);
  const auto result = hierarchy.access(2, 1, 100);
  EXPECT_EQ(result.level, HitLevel::kL1);
  EXPECT_EQ(hierarchy.stats().l1_hits, 1u);
  EXPECT_EQ(hierarchy.stats().l2_hits, 0u);
}

TEST(TwoLevel, EvictedFromL1StillInL2) {
  // The paper's arrangement: documents L1 replaces remain available in L2.
  TwoLevelCache hierarchy = make_hierarchy(250);
  hierarchy.access(1, 1, 200);   // big doc: SIZE policy will evict it first
  hierarchy.access(2, 2, 100);   // forces eviction of doc 1 from L1
  EXPECT_FALSE(hierarchy.l1().contains(1));
  EXPECT_TRUE(hierarchy.l2().contains(1));
  const auto result = hierarchy.access(3, 1, 200);  // back from L2
  EXPECT_EQ(result.level, HitLevel::kL2);
  EXPECT_EQ(hierarchy.stats().l2_hits, 1u);
  // The copy was re-admitted to L1.
  EXPECT_TRUE(hierarchy.l1().contains(1));
}

TEST(TwoLevel, SizeChangeMissesBothLevels) {
  TwoLevelCache hierarchy = make_hierarchy(1000);
  hierarchy.access(1, 1, 100);
  const auto result = hierarchy.access(2, 1, 150);
  EXPECT_EQ(result.level, HitLevel::kMiss);
  // Both levels now hold the new copy.
  EXPECT_EQ(hierarchy.l1().find(1)->size, 150u);
  EXPECT_EQ(hierarchy.l2().find(1)->size, 150u);
}

TEST(TwoLevel, StatsDenominatorsAreAllRequests) {
  TwoLevelCache hierarchy = make_hierarchy(250);
  hierarchy.access(1, 1, 200);
  hierarchy.access(2, 2, 100);  // evicts 1 from L1
  hierarchy.access(3, 1, 200);  // L2 hit
  hierarchy.access(4, 9, 50);   // miss
  const auto& stats = hierarchy.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.requested_bytes, 550u);
  EXPECT_DOUBLE_EQ(stats.l2_hit_rate(), 0.25);
  EXPECT_DOUBLE_EQ(stats.l2_weighted_hit_rate(), 200.0 / 550.0);
  EXPECT_DOUBLE_EQ(stats.l1_hit_rate(), 0.0);
}

TEST(TwoLevel, L2WhrExceedsL2HrUnderSizePolicy) {
  // SIZE pushes big documents down; their byte mass makes L2's weighted
  // hit rate exceed its unweighted hit rate (the Figs 16-18 signature).
  TwoLevelCache hierarchy = make_hierarchy(3000);
  // Small popular docs stay in L1; big docs bounce to L2.
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      hierarchy.access(static_cast<SimTime>(round * 100 + i), 100 + i, 100);
    }
    hierarchy.access(static_cast<SimTime>(round * 100 + 50), 999, 2500);  // the big one
  }
  const auto& stats = hierarchy.stats();
  EXPECT_GT(stats.l2_hits, 0u);
  EXPECT_GT(stats.l2_weighted_hit_rate(), stats.l2_hit_rate());
}

}  // namespace
}  // namespace wcs
