// The paper's worked example (Table 2): a 42.5kB cache, the 15-request
// trace for documents A-H, and a new 1.5kB document I arriving at time 15+.
// Table 2's middle section fixes each document's key values; its bottom
// section (and §1.2's prose) fixes which documents each policy removes.
// Sizes use 1kB = 1024 bytes (that is the convention under which Table 2's
// floor(log2) values hold, e.g. E = 8kB -> bucket 13).
#include <gtest/gtest.h>

#include <map>
#include <string_view>
#include <vector>

#include "src/core/cache.h"
#include "src/core/policy.h"

namespace wcs {
namespace {

constexpr std::uint64_t kB = 1024;

struct Doc {
  UrlId id;
  std::uint64_t size;
};

// A..H get ids 1..8.
const std::map<char, Doc> kDocs = {
    {'A', {1, 1945}},   // 1.9 kB
    {'B', {2, 1229}},   // 1.2 kB
    {'C', {3, 9216}},   // 9 kB
    {'D', {4, 15360}},  // 15 kB
    {'E', {5, 8192}},   // 8 kB
    {'F', {6, 307}},    // 0.3 kB
    {'G', {7, 1945}},   // 1.9 kB
    {'H', {8, 5325}},   // 5.2 kB
};

constexpr std::string_view kTrace = "ABCBBADECDFGADH";  // times 1..15

Cache run_table2(std::unique_ptr<RemovalPolicy> policy) {
  CacheConfig config;
  config.capacity_bytes = static_cast<std::uint64_t>(42.5 * kB);  // 43520
  Cache cache{config, std::move(policy)};
  SimTime t = 1;
  for (const char name : kTrace) {
    const Doc& doc = kDocs.at(name);
    cache.access(t++, doc.id, doc.size);
  }
  return cache;
}

std::vector<char> evicted_after_insert(Cache& cache) {
  // Document I: 1.5 kB, previously unseen, id 9, at time 16.
  std::vector<char> evicted;
  for (const auto& [name, doc] : kDocs) {
    if (!cache.contains(doc.id)) evicted.push_back(name);
  }
  EXPECT_TRUE(evicted.empty()) << "cache should be full but complete before I";
  cache.access(16, 9, static_cast<std::uint64_t>(1.5 * kB));
  evicted.clear();
  for (const auto& [name, doc] : kDocs) {
    if (!cache.contains(doc.id)) evicted.push_back(name);
  }
  return evicted;
}

TEST(PaperTable2, CacheIsExactlyFullAfterTrace) {
  Cache cache = run_table2(make_lru());
  EXPECT_EQ(cache.entry_count(), 8u);
  EXPECT_EQ(cache.used_bytes(), 43'519u);  // one byte shy of 42.5 kB
  EXPECT_EQ(cache.stats().hits, 7u);       // B,B,A,C,D,A,D repeats
}

TEST(PaperTable2, KeyValuesMatchMiddleTable) {
  Cache cache = run_table2(make_lru());
  const auto check = [&](char name, SimTime etime, SimTime atime, std::uint64_t nref) {
    const CacheEntry* entry = cache.find(kDocs.at(name).id);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->etime, etime) << name;
    EXPECT_EQ(entry->atime, atime) << name;
    EXPECT_EQ(entry->nref, nref) << name;
  };
  check('A', 1, 13, 3);
  check('B', 2, 5, 3);
  check('C', 3, 9, 2);
  check('D', 7, 14, 3);
  check('E', 8, 8, 1);
  check('F', 11, 11, 1);
  check('G', 12, 12, 1);
  check('H', 15, 15, 1);
}

TEST(PaperTable2, FifoRemovesA) {
  // ETIME primary: A entered first; 1.9 kB frees enough for I.
  Cache cache = run_table2(make_fifo());
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'A'});
}

TEST(PaperTable2, LruRemovesBThenE) {
  // §1.2: "LRU will first remove document B, freeing up 1.2kB ... but this
  // is insufficient ... LRU then removes E to free 8kB more."
  Cache cache = run_table2(make_lru());
  EXPECT_EQ(evicted_after_insert(cache), (std::vector<char>{'B', 'E'}));
}

TEST(PaperTable2, SizeRemovesD) {
  Cache cache = run_table2(make_size());
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'D'});
}

TEST(PaperTable2, Log2SizeWithAtimeRemovesE) {
  // Bucket 13 holds C, D, E; E is the least recently used of the three.
  Cache cache = run_table2(
      make_sorted_policy(KeySpec{{Key::kLog2Size, Key::kAtime}}));
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'E'});
}

TEST(PaperTable2, LfuWithEtimeRemovesE) {
  // NREF=1 group ordered by ETIME: E entered first.
  Cache cache = run_table2(make_sorted_policy(KeySpec{{Key::kNref, Key::kEtime}}));
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'E'});
}

TEST(PaperTable2, HyperGRemovesE) {
  // NREF then ATIME: E is the only doc with nref=1 and the oldest access.
  Cache cache = run_table2(make_hyper_g());
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'E'});
}

TEST(PaperTable2, PitkowReckerFallsBackToSize) {
  // Every document was accessed "today" (all times within day 0), so the
  // policy's SIZE branch governs: D goes.
  Cache cache = run_table2(make_pitkow_recker());
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'D'});
}

TEST(PaperTable2, LruMinRemovesDocAtLeastIncomingSize) {
  // LRU-MIN with incoming 1.5kB: documents >= 1.5kB are A,C,D,E,G,H; the
  // least recently used of them is B? no - B is 1.2kB. Among qualifiers the
  // oldest access is E (atime 8).
  Cache cache = run_table2(make_lru_min());
  EXPECT_EQ(evicted_after_insert(cache), std::vector<char>{'E'});
}

}  // namespace
}  // namespace wcs
