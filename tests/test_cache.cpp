#include "src/core/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace wcs {
namespace {

Cache make_cache(std::uint64_t capacity, std::unique_ptr<RemovalPolicy> policy = nullptr) {
  CacheConfig config;
  config.capacity_bytes = capacity;
  return Cache{config, policy ? std::move(policy) : make_lru()};
}

TEST(Cache, MissThenHit) {
  Cache cache = make_cache(1000);
  const auto miss = cache.access(1, 1, 100);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.inserted);
  const auto hit = cache.access(2, 1, 100);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().requests, 2u);
  EXPECT_EQ(cache.used_bytes(), 100u);
}

TEST(Cache, SizeMismatchIsConsistencyMiss) {
  // §1.1: a hit requires URL *and* size to match.
  Cache cache = make_cache(1000);
  cache.access(1, 1, 100);
  const auto changed = cache.access(2, 1, 120);
  EXPECT_FALSE(changed.hit);
  EXPECT_TRUE(changed.size_change);
  EXPECT_EQ(cache.stats().size_change_misses, 1u);
  // The new copy replaced the old one.
  EXPECT_EQ(cache.used_bytes(), 120u);
  EXPECT_TRUE(cache.access(3, 1, 120).hit);
}

TEST(Cache, EvictsToMakeRoom) {
  Cache cache = make_cache(250);
  cache.access(1, 1, 100);
  cache.access(2, 2, 100);
  const auto result = cache.access(3, 3, 100);  // needs one eviction
  EXPECT_TRUE(result.inserted);
  EXPECT_EQ(result.evictions, 1u);
  EXPECT_FALSE(cache.contains(1));  // LRU victim
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_LE(cache.used_bytes(), 250u);
}

TEST(Cache, LruOrderRespondsToHits) {
  Cache cache = make_cache(250);
  cache.access(1, 1, 100);
  cache.access(2, 2, 100);
  cache.access(3, 1, 100);      // touch 1: now 2 is LRU
  cache.access(4, 3, 100);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Cache, DocumentLargerThanCacheBypasses) {
  Cache cache = make_cache(100);
  cache.access(1, 1, 50);
  const auto result = cache.access(2, 2, 500);
  EXPECT_FALSE(result.hit);
  EXPECT_FALSE(result.inserted);
  EXPECT_EQ(cache.stats().rejected_too_large, 1u);
  EXPECT_TRUE(cache.contains(1));  // nothing was evicted for it
}

TEST(Cache, InfiniteCacheNeverEvicts) {
  Cache cache = make_cache(0);
  for (std::uint32_t i = 0; i < 1000; ++i) cache.access(i, i, 10'000);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.entry_count(), 1000u);
  EXPECT_TRUE(cache.is_infinite());
  EXPECT_EQ(cache.stats().max_used_bytes, 10'000'000u);
}

TEST(Cache, MaxUsedTracksHighWater) {
  Cache cache = make_cache(300);
  cache.access(1, 1, 200);
  cache.access(2, 2, 100);
  cache.access(3, 3, 250);  // evicts both
  EXPECT_EQ(cache.stats().max_used_bytes, 300u);
}

TEST(Cache, EraseRemovesAndReports) {
  Cache cache = make_cache(1000);
  cache.access(1, 1, 100);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, FindExposesMetadata) {
  Cache cache = make_cache(1000);
  cache.access(5, 1, 100, FileType::kAudio);
  cache.access(9, 1, 100, FileType::kAudio);
  const CacheEntry* entry = cache.find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->etime, 5);
  EXPECT_EQ(entry->atime, 9);
  EXPECT_EQ(entry->nref, 2u);
  EXPECT_EQ(entry->type, FileType::kAudio);
  EXPECT_EQ(cache.find(99), nullptr);
}

TEST(Cache, HitAndByteAccounting) {
  Cache cache = make_cache(1000);
  cache.access(1, 1, 300);
  cache.access(2, 1, 300);
  cache.access(3, 2, 100);
  const CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.requested_bytes, 700u);
  EXPECT_EQ(stats.hit_bytes, 300u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.weighted_hit_rate(), 3.0 / 7.0);
}

TEST(Cache, OnEvictCallbackFires) {
  std::vector<UrlId> evicted;
  CacheConfig config;
  config.capacity_bytes = 150;
  config.on_evict = [&evicted](const CacheEntry& entry) { evicted.push_back(entry.url); };
  Cache cache{config, make_lru()};
  cache.access(1, 1, 100);
  cache.access(2, 2, 100);  // evicts 1
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  cache.access(3, 2, 120);  // size change removes old copy
  EXPECT_EQ(evicted.size(), 2u);
  cache.erase(2);
  EXPECT_EQ(evicted.size(), 3u);
}

TEST(Cache, PeriodicSweepTrimsAtDayBoundary) {
  CacheConfig config;
  config.capacity_bytes = 1000;
  config.periodic = {true, 0.5};
  Cache cache{config, make_lru()};
  cache.access(day_start(0) + 10, 1, 400);
  cache.access(day_start(0) + 20, 2, 400);
  EXPECT_EQ(cache.used_bytes(), 800u);
  // First access of day 1 triggers the sweep down to 500 bytes first.
  cache.access(day_start(1) + 10, 3, 100);
  EXPECT_LE(cache.used_bytes(), 500u);
  EXPECT_EQ(cache.stats().periodic_sweeps, 1u);
  EXPECT_FALSE(cache.contains(1));  // LRU went first
}

TEST(Cache, PeriodicSweepDisabledByDefault) {
  Cache cache = make_cache(1000);
  cache.access(day_start(0), 1, 900);
  cache.access(day_start(5), 2, 50);
  EXPECT_EQ(cache.stats().periodic_sweeps, 0u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(Cache(CacheConfig{}, nullptr), std::invalid_argument);
  CacheConfig config;
  config.periodic = {true, 1.5};
  EXPECT_THROW(Cache(config, make_lru()), std::invalid_argument);
}

TEST(Cache, SnapshotListsEntries) {
  Cache cache = make_cache(1000);
  cache.access(1, 1, 100);
  cache.access(2, 2, 200);
  const auto snapshot = cache.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
}

}  // namespace
}  // namespace wcs
