#include "src/proxy/proxy.h"

#include <gtest/gtest.h>

#include "src/http/date.h"
#include "src/proxy/origin.h"

namespace wcs {
namespace {

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

struct Fixture {
  OriginServer origin{"srv.example"};
  ProxyCache::Config config;

  ProxyCache make() {
    return ProxyCache{config, [this](const HttpRequest& request, SimTime now) {
                        return origin.handle(request, now);
                      }};
  }
};

TEST(Proxy, MissThenHit) {
  Fixture fixture;
  fixture.origin.put("/a.html", "document body", 10);
  ProxyCache proxy = fixture.make();

  const HttpResponse first = proxy.handle(get("http://srv.example/a.html"), 100);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.headers.get("X-Cache"), "MISS");
  EXPECT_EQ(first.body, "document body");

  const HttpResponse second = proxy.handle(get("http://srv.example/a.html"), 110);
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.headers.get("X-Cache"), "HIT");
  EXPECT_EQ(second.body, "document body");

  EXPECT_EQ(proxy.stats().requests, 2u);
  EXPECT_EQ(proxy.stats().hits, 1u);
  EXPECT_EQ(proxy.stats().misses, 1u);
  // The origin saw only the first request.
  EXPECT_EQ(fixture.origin.requests_served(), 1u);
}

TEST(Proxy, RevalidatesAfterTtlAndKeeps304Fresh) {
  Fixture fixture;
  fixture.config.revalidate_after = 100;
  fixture.origin.put("/a.html", "stable", 10);
  ProxyCache proxy = fixture.make();

  (void)proxy.handle(get("http://srv.example/a.html"), 1000);
  // Past the TTL: proxy sends a conditional GET; origin answers 304.
  const HttpResponse response = proxy.handle(get("http://srv.example/a.html"), 2000);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "stable");
  EXPECT_EQ(proxy.stats().validations, 1u);
  EXPECT_EQ(proxy.stats().validated_fresh, 1u);
  EXPECT_EQ(proxy.stats().hits, 1u);  // a validated-fresh serve is a hit
  EXPECT_EQ(fixture.origin.requests_served(), 2u);
}

TEST(Proxy, RevalidationFetchesChangedDocument) {
  Fixture fixture;
  fixture.config.revalidate_after = 100;
  fixture.origin.put("/a.html", "version one", 10);
  ProxyCache proxy = fixture.make();

  (void)proxy.handle(get("http://srv.example/a.html"), 1000);
  fixture.origin.edit("/a.html", "version two!", 1500);
  const HttpResponse response = proxy.handle(get("http://srv.example/a.html"), 2000);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "version two!");
  EXPECT_EQ(proxy.stats().validations, 1u);
  EXPECT_EQ(proxy.stats().validated_fresh, 0u);
  EXPECT_EQ(proxy.stats().misses, 2u);
  // Subsequent request hits the refreshed copy.
  const HttpResponse again = proxy.handle(get("http://srv.example/a.html"), 2010);
  EXPECT_EQ(again.body, "version two!");
  EXPECT_EQ(again.headers.get("X-Cache"), "HIT");
}

TEST(Proxy, ClientConditionalGetAnswered304) {
  Fixture fixture;
  fixture.origin.put("/a.html", "body", 10);
  ProxyCache proxy = fixture.make();
  (void)proxy.handle(get("http://srv.example/a.html"), 100);

  HttpRequest conditional = get("http://srv.example/a.html");
  conditional.headers.set("If-Modified-Since", to_http_date(50));
  const HttpResponse response = proxy.handle(conditional, 110);
  EXPECT_EQ(response.status, 304);
  EXPECT_TRUE(response.body.empty());
}

TEST(Proxy, EvictionDropsStoredBody) {
  Fixture fixture;
  fixture.config.capacity_bytes = 1000;
  fixture.config.policy = "lru";
  ProxyCache proxy = fixture.make();
  fixture.origin.put("/big1", std::string(600, 'a'), 1);
  fixture.origin.put("/big2", std::string(600, 'b'), 1);
  (void)proxy.handle(get("http://srv.example/big1"), 100);
  (void)proxy.handle(get("http://srv.example/big2"), 200);  // evicts big1
  EXPECT_LE(proxy.stored_bytes(), 1000u);
  // big1 is a miss again (and the origin serves it).
  const HttpResponse response = proxy.handle(get("http://srv.example/big1"), 300);
  EXPECT_EQ(response.headers.get("X-Cache"), "MISS");
  EXPECT_EQ(proxy.stats().misses, 3u);
}

TEST(Proxy, SizePolicyEvictsLargestFirst) {
  Fixture fixture;
  fixture.config.capacity_bytes = 1000;
  fixture.config.policy = "size";
  ProxyCache proxy = fixture.make();
  fixture.origin.put("/big", std::string(700, 'a'), 1);
  fixture.origin.put("/small", std::string(100, 'b'), 1);
  fixture.origin.put("/medium", std::string(400, 'c'), 1);
  (void)proxy.handle(get("http://srv.example/big"), 100);
  (void)proxy.handle(get("http://srv.example/small"), 110);
  (void)proxy.handle(get("http://srv.example/medium"), 120);  // evicts /big
  EXPECT_EQ(proxy.handle(get("http://srv.example/small"), 130).headers.get("X-Cache"),
            "HIT");
  EXPECT_EQ(proxy.handle(get("http://srv.example/big"), 140).headers.get("X-Cache"),
            "MISS");
}

TEST(Proxy, UncacheableResponsesNotStored) {
  Fixture fixture;
  fixture.origin.put("/dyn.cgi", "generated", 1);
  ProxyCache proxy = fixture.make();
  (void)proxy.handle(get("http://srv.example/dyn.cgi"), 100);
  const HttpResponse again = proxy.handle(get("http://srv.example/dyn.cgi"), 110);
  EXPECT_EQ(again.headers.get("X-Cache"), "MISS");
  EXPECT_EQ(proxy.stats().uncacheable, 2u);
  EXPECT_EQ(fixture.origin.requests_served(), 2u);
}

TEST(Proxy, NonGetForwardedNotCached) {
  Fixture fixture;
  ProxyCache proxy = fixture.make();
  HttpRequest post = get("http://srv.example/form");
  post.method = "POST";
  const HttpResponse response = proxy.handle(post, 100);
  EXPECT_EQ(response.status, 501);  // origin refuses non-GET
  EXPECT_EQ(proxy.stats().uncacheable, 1u);
  EXPECT_EQ(proxy.cache().entry_count(), 0u);
}

TEST(Proxy, ErrorResponsesNotCached) {
  Fixture fixture;
  ProxyCache proxy = fixture.make();
  const HttpResponse response = proxy.handle(get("http://srv.example/missing"), 100);
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(proxy.cache().entry_count(), 0u);
}

TEST(Proxy, AccessLogSinkReceivesEveryRequest) {
  Fixture fixture;
  fixture.origin.put("/a.html", "x", 1);
  std::vector<RawRequest> log;
  fixture.config.log_sink = ProxyCache::log_to_vector(log);
  ProxyCache proxy = fixture.make();
  (void)proxy.handle(get("http://srv.example/a.html"), 100);
  (void)proxy.handle(get("http://srv.example/a.html"), 110);
  (void)proxy.handle(get("http://srv.example/missing"), 120);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].status, 200);
  EXPECT_EQ(log[2].status, 404);
  EXPECT_EQ(log[1].size, 1u);
}

TEST(Proxy, NullLogSinkDisablesLogging) {
  Fixture fixture;
  fixture.origin.put("/a.html", "x", 1);
  ProxyCache proxy = fixture.make();  // default config: no sink
  (void)proxy.handle(get("http://srv.example/a.html"), 100);
  EXPECT_EQ(proxy.stats().requests, 1u);  // logging off, serving unaffected
}

TEST(Proxy, BoundedLogRingKeepsNewestRecords) {
  Fixture fixture;
  fixture.origin.put("/a.html", "x", 1);
  BoundedLogRing ring{4};
  fixture.config.log_sink = ring.sink();
  ProxyCache proxy = fixture.make();
  for (int i = 0; i < 10; ++i) {
    (void)proxy.handle(get("http://srv.example/a.html"), 100 + 10 * i);
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  const std::vector<RawRequest> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // The newest four records, oldest first: times 160, 170, 180, 190.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].time, 160 + 10 * static_cast<SimTime>(i));
  }
}

TEST(Proxy, BoundedLogRingBelowCapacityIsInOrder) {
  BoundedLogRing ring{8};
  for (int i = 0; i < 3; ++i) {
    RawRequest record;
    record.time = i;
    ring.push(record);
  }
  const std::vector<RawRequest> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].time, static_cast<SimTime>(i));
  }
  EXPECT_THROW(BoundedLogRing{0}, std::invalid_argument);
}

TEST(Proxy, RejectsBadConfig) {
  Fixture fixture;
  fixture.config.policy = "not-a-policy";
  EXPECT_THROW(fixture.make(), std::invalid_argument);
  EXPECT_THROW(ProxyCache(ProxyCache::Config{}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace wcs
