#include "src/util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace wcs {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (const double s : {0.5, 0.74, 1.0, 1.3}) {
    ZipfSampler zipf{1000, s};
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 1000; ++k) sum += zipf.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(Zipf, PmfMonotoneDecreasing) {
  ZipfSampler zipf{100, 0.9};
  for (std::uint64_t k = 1; k < 100; ++k) EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
}

TEST(Zipf, PmfZeroOutsideSupport) {
  ZipfSampler zipf{10, 1.0};
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(11), 0.0);
}

TEST(Zipf, SamplesStayInSupport) {
  ZipfSampler zipf{50, 0.8};
  Rng rng{1};
  for (int i = 0; i < 20'000; ++i) {
    const auto k = zipf(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(Zipf, EmpiricalMatchesPmf) {
  constexpr std::uint64_t kN = 200;
  ZipfSampler zipf{kN, 1.0};
  Rng rng{2};
  constexpr int kSamples = 200'000;
  std::vector<int> counts(kN + 1, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf(rng)];
  for (const std::uint64_t k : {1ULL, 2ULL, 5ULL, 20ULL, 100ULL}) {
    const double expected = zipf.pmf(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 8.0) << "rank " << k;
  }
}

TEST(Zipf, SingletonSupport) {
  ZipfSampler zipf{1, 1.0};
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 1u);
  EXPECT_NEAR(zipf.pmf(1), 1.0, 1e-12);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Lognormal, MeanMatchesTheory) {
  // E[X] = exp(mu + sigma^2/2)
  const double mu = std::log(10'000.0) - 0.5;
  const double sigma = 1.0;
  LognormalSampler sampler{mu, sigma};
  Rng rng{4};
  double sum = 0.0;
  constexpr int kSamples = 400'000;
  for (int i = 0; i < kSamples; ++i) sum += sampler(rng);
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / kSamples, expected, expected * 0.03);
}

TEST(Lognormal, AlwaysPositive) {
  LognormalSampler sampler{0.0, 2.0};
  Rng rng{5};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(sampler(rng), 0.0);
}

TEST(BoundedPareto, StaysInBounds) {
  BoundedParetoSampler sampler{1.2, 100.0, 1e6};
  Rng rng{6};
  for (int i = 0; i < 20'000; ++i) {
    const double x = sampler(rng);
    EXPECT_GE(x, 100.0 * 0.999);
    EXPECT_LE(x, 1e6 * 1.001);
  }
}

TEST(BoundedPareto, MedianMatchesTheory) {
  const double alpha = 1.0;
  const double lo = 1.0;
  const double hi = 1000.0;
  BoundedParetoSampler sampler{alpha, lo, hi};
  // Median: F(m) = 0.5 with F(x) = (1 - lo^a x^-a) / (1 - (lo/hi)^a).
  Rng rng{7};
  std::vector<double> samples;
  for (int i = 0; i < 50'000; ++i) samples.push_back(sampler(rng));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  const double median = samples[samples.size() / 2];
  const double denom = 1.0 - std::pow(lo / hi, alpha);
  const double expected = std::pow(1.0 - 0.5 * denom, -1.0 / alpha) * lo;
  EXPECT_NEAR(median, expected, expected * 0.05);
}

TEST(Normal, StandardMoments) {
  Rng rng{8};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = sample_standard_normal(rng);
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(Poisson, ZeroAndNegativeLambda) {
  Rng rng{9};
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
  EXPECT_EQ(sample_poisson(rng, -5.0), 0u);
}

TEST(Poisson, SmallLambdaMean) {
  Rng rng{10};
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(sample_poisson(rng, 3.5));
  EXPECT_NEAR(sum / kSamples, 3.5, 0.05);
}

TEST(Poisson, LargeLambdaMean) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(sample_poisson(rng, 2000.0));
  EXPECT_NEAR(sum / kSamples, 2000.0, 2000.0 * 0.01);
}

TEST(Discrete, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  DiscreteSampler sampler{weights};
  Rng rng{12};
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) ++counts[sampler(rng)];
  EXPECT_NEAR(counts[0], kSamples * 0.1, kSamples * 0.01);
  EXPECT_NEAR(counts[1], kSamples * 0.2, kSamples * 0.01);
  EXPECT_NEAR(counts[2], kSamples * 0.7, kSamples * 0.01);
}

TEST(Discrete, ZeroWeightNeverChosen) {
  const std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
  DiscreteSampler sampler{weights};
  Rng rng{13};
  for (int i = 0; i < 10'000; ++i) {
    const auto idx = sampler(rng);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Discrete, ProbabilityOfReportsNormalized) {
  const std::vector<double> weights = {2.0, 2.0, 4.0};
  DiscreteSampler sampler{weights};
  EXPECT_DOUBLE_EQ(sampler.probability_of(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability_of(2), 0.5);
  EXPECT_DOUBLE_EQ(sampler.probability_of(99), 0.0);
}

TEST(Discrete, RejectsBadInput) {
  const std::vector<double> empty;
  const std::vector<double> zeros = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(DiscreteSampler{empty}, std::invalid_argument);
  EXPECT_THROW(DiscreteSampler{zeros}, std::invalid_argument);
  EXPECT_THROW(DiscreteSampler{negative}, std::invalid_argument);
}

TEST(Discrete, SingleOutcome) {
  DiscreteSampler sampler{std::vector<double>{5.0}};
  Rng rng{14};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler(rng), 0u);
}

}  // namespace
}  // namespace wcs
