#include "src/capture/extractor.h"

#include <gtest/gtest.h>

#include "src/capture/synth.h"
#include "src/http/message.h"
#include "src/trace/clf.h"

namespace wcs {
namespace {

SynthExchange make_exchange(const std::string& url, const std::string& body,
                            int status = 200, std::int64_t start = 100) {
  HttpRequest request;
  request.method = "GET";
  request.target = url;
  HttpResponse response;
  response.status = status;
  response.reason = std::string{reason_phrase(status)};
  response.headers.set("Content-Length", std::to_string(body.size()));
  response.body = body;
  SynthExchange exchange;
  exchange.request = request.serialize();
  exchange.response = response.serialize();
  exchange.start_time = start;
  return exchange;
}

std::vector<HttpTransaction> run_pipeline(const std::vector<SynthExchange>& exchanges,
                                          const SynthOptions& options = {}) {
  std::vector<HttpTransaction> transactions;
  HttpExtractor extractor{[&](const HttpTransaction& t) { transactions.push_back(t); }};
  for (const TcpSegment& segment : synthesize_capture(exchanges, options)) {
    extractor.accept(segment);
  }
  extractor.finish();
  return transactions;
}

TEST(Extractor, SingleExchange) {
  const auto transactions =
      run_pipeline({make_exchange("http://srv.example/a.html", "hello world")});
  ASSERT_EQ(transactions.size(), 1u);
  EXPECT_EQ(transactions[0].url, "http://srv.example/a.html");
  EXPECT_EQ(transactions[0].status, 200);
  EXPECT_EQ(transactions[0].bytes, 11u);
  EXPECT_EQ(transactions[0].method, "GET");
  EXPECT_EQ(transactions[0].client, "10.0.0.1");
}

TEST(Extractor, MultipleConnections) {
  std::vector<SynthExchange> exchanges;
  for (int i = 0; i < 20; ++i) {
    exchanges.push_back(make_exchange("http://s/e" + std::to_string(i) + ".gif",
                                      std::string(100 + i, 'x'), 200, i * 10));
  }
  const auto transactions = run_pipeline(exchanges);
  ASSERT_EQ(transactions.size(), 20u);
  EXPECT_EQ(transactions[7].bytes, 107u);
}

TEST(Extractor, SurvivesReorderingAndDuplication) {
  SynthOptions options;
  options.reorder_probability = 0.3;
  options.duplicate_probability = 0.2;
  options.max_segment_bytes = 64;  // force many segments
  std::vector<SynthExchange> exchanges;
  for (int i = 0; i < 30; ++i) {
    exchanges.push_back(make_exchange("http://s/r" + std::to_string(i) + ".html",
                                      std::string(500, static_cast<char>('a' + i % 26))));
  }
  const auto transactions = run_pipeline(exchanges, options);
  ASSERT_EQ(transactions.size(), 30u);
  for (const auto& transaction : transactions) EXPECT_EQ(transaction.bytes, 500u);
}

TEST(Extractor, HostHeaderReconstructsAbsoluteUrl) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/relative/doc.html";
  request.headers.set("Host", "www.example.edu");
  HttpResponse response;
  response.status = 200;
  response.headers.set("Content-Length", "2");
  response.body = "ok";
  SynthExchange exchange;
  exchange.request = request.serialize();
  exchange.response = response.serialize();
  const auto transactions = run_pipeline({exchange});
  ASSERT_EQ(transactions.size(), 1u);
  EXPECT_EQ(transactions[0].url, "http://www.example.edu/relative/doc.html");
}

TEST(Extractor, CloseDelimitedResponseFlushedByFin) {
  // Response with no Content-Length: body extends to connection close.
  HttpRequest request;
  request.method = "GET";
  request.target = "http://s/nolen.txt";
  SynthExchange exchange;
  exchange.request = request.serialize();
  exchange.response = "HTTP/1.0 200 OK\r\n\r\nbody until close";
  const auto transactions = run_pipeline({exchange});
  ASSERT_EQ(transactions.size(), 1u);
  EXPECT_EQ(transactions[0].bytes, 16u);
}

TEST(Extractor, NonOkStatusesReported) {
  const auto transactions = run_pipeline({make_exchange("http://s/missing.html", "", 404)});
  ASSERT_EQ(transactions.size(), 1u);
  EXPECT_EQ(transactions[0].status, 404);
  EXPECT_EQ(transactions[0].bytes, 0u);
}

TEST(Extractor, ToRawRequestAndClfExport) {
  const auto transactions =
      run_pipeline({make_exchange("http://srv.example/x.gif", "imgdata", 200, 12'345)});
  ASSERT_EQ(transactions.size(), 1u);
  const RawRequest raw = HttpExtractor::to_raw_request(transactions[0]);
  EXPECT_EQ(raw.url, "http://srv.example/x.gif");
  EXPECT_EQ(raw.size, 7u);
  // The record must round-trip through the common log format.
  const auto reparsed = parse_clf_line(format_clf_line(raw));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->url, raw.url);
  EXPECT_EQ(reparsed->size, raw.size);
  EXPECT_EQ(reparsed->status, 200);
}

TEST(Extractor, CountsEmitted) {
  std::vector<SynthExchange> exchanges = {make_exchange("http://s/1.html", "a"),
                                          make_exchange("http://s/2.html", "b")};
  HttpExtractor extractor{[](const HttpTransaction&) {}};
  for (const TcpSegment& segment : synthesize_capture(exchanges)) extractor.accept(segment);
  extractor.finish();
  EXPECT_EQ(extractor.transactions_emitted(), 2u);
  EXPECT_EQ(extractor.parse_failures(), 0u);
}

TEST(Extractor, FormatIpv4) {
  EXPECT_EQ(format_ipv4(0x0a000001), "10.0.0.1");
  EXPECT_EQ(format_ipv4(0xffffffff), "255.255.255.255");
  EXPECT_EQ(format_ipv4(0), "0.0.0.0");
}

}  // namespace
}  // namespace wcs
