#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim_left("  a "), "a ");
  EXPECT_EQ(trim_right(" a  "), " a");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmptyAndTrailing) {
  EXPECT_EQ(split("", ',').size(), 1u);
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, IequalsAndLower) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("htt", "http"));
  EXPECT_TRUE(ends_with("file.gif", ".gif"));
  EXPECT_FALSE(ends_with("gif", ".gif"));
}

TEST(Strings, ParseU64Strict) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64(" 1"));
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-9223372036854775808"), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_i64("9223372036854775807"), std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(parse_i64("9223372036854775808"));
  EXPECT_FALSE(parse_i64("-9223372036854775809"));
  EXPECT_FALSE(parse_i64("-"));
}

TEST(Strings, UrlExtension) {
  EXPECT_EQ(url_extension("http://a.b/c/pic.GIF"), "gif");
  EXPECT_EQ(url_extension("/path/file.html"), "html");
  EXPECT_EQ(url_extension("/path/file.html?x=1"), "html");
  EXPECT_EQ(url_extension("/path/file.tar.gz"), "gz");
  EXPECT_EQ(url_extension("/noext"), "");
  EXPECT_EQ(url_extension("/dir/"), "");
  EXPECT_EQ(url_extension("http://host.only"), "");
  EXPECT_EQ(url_extension("/trailingdot."), "");
}

TEST(Strings, LooksDynamic) {
  EXPECT_TRUE(looks_dynamic("/cgi-bin/search"));
  EXPECT_TRUE(looks_dynamic("/page?query=1"));
  EXPECT_TRUE(looks_dynamic("/scripts/run.cgi"));
  EXPECT_FALSE(looks_dynamic("/static/page.html"));
  EXPECT_FALSE(looks_dynamic("http://host/img.gif"));
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 kB");
  EXPECT_EQ(format_bytes(5ULL * 1024 * 1024), "5.00 MB");
  EXPECT_EQ(format_bytes(3ULL * 1024 * 1024 * 1024), "3.00 GB");
}

}  // namespace
}  // namespace wcs
