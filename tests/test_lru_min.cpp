#include "src/core/lru_min.h"

#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/core/sorted_policy.h"

namespace wcs {
namespace {

CacheEntry entry(UrlId url, std::uint64_t size, SimTime atime, std::uint64_t tag = 0) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = atime;
  e.atime = atime;
  e.nref = 1;
  e.random_tag = tag;
  return e;
}

EvictionContext incoming(std::uint64_t size) {
  EvictionContext ctx;
  ctx.incoming_size = size;
  ctx.needed_bytes = size;
  return ctx;
}

TEST(LruMin, PrefersDocAtLeastIncomingSize) {
  LruMinPolicy policy;
  policy.on_insert(entry(1, 8000, 10));   // large, old
  policy.on_insert(entry(2, 500, 5));     // small, oldest
  policy.on_insert(entry(3, 9000, 20));   // large, newer
  // Incoming 6000: docs >= 6000 are {1, 3}; LRU among them is 1 — even
  // though doc 2 is older overall.
  EXPECT_EQ(policy.choose_victim(incoming(6000)), 1u);
}

TEST(LruMin, HalvesThresholdWhenNoneQualify) {
  LruMinPolicy policy;
  policy.on_insert(entry(1, 300, 10));
  policy.on_insert(entry(2, 700, 5));
  // Incoming 3000: none >= 3000, none >= 1500; at 750 none; at 375 doc 2
  // qualifies (700 >= 375).
  EXPECT_EQ(policy.choose_victim(incoming(3000)), 2u);
}

TEST(LruMin, FallsBackToGlobalLru) {
  LruMinPolicy policy;
  policy.on_insert(entry(1, 4, 10));
  policy.on_insert(entry(2, 6, 5));
  // Incoming 1: threshold 1 -> every doc qualifies: plain LRU.
  EXPECT_EQ(policy.choose_victim(incoming(1)), 2u);
}

TEST(LruMin, LruWithinSameThresholdClass) {
  LruMinPolicy policy;
  policy.on_insert(entry(1, 1000, 50));
  policy.on_insert(entry(2, 1100, 20));
  policy.on_insert(entry(3, 1200, 90));
  EXPECT_EQ(policy.choose_victim(incoming(1000)), 2u);
}

TEST(LruMin, BoundaryBucketFiltersBySize) {
  LruMinPolicy policy;
  // Bucket 9 holds [512, 1024): 600 does NOT qualify for threshold 700,
  // 800 does.
  policy.on_insert(entry(1, 600, 5));   // oldest but too small
  policy.on_insert(entry(2, 800, 50));
  EXPECT_EQ(policy.choose_victim(incoming(700)), 2u);
}

TEST(LruMin, HitRefreshesRecency) {
  LruMinPolicy policy;
  policy.on_insert(entry(1, 1000, 10));
  policy.on_insert(entry(2, 1000, 20));
  CacheEntry touched = entry(1, 1000, 99);
  touched.nref = 2;
  policy.on_hit(touched);
  EXPECT_EQ(policy.choose_victim(incoming(1000)), 2u);
}

TEST(LruMin, RemoveUntracks) {
  LruMinPolicy policy;
  const CacheEntry doc = entry(1, 1000, 10);
  policy.on_insert(doc);
  policy.on_remove(doc);
  EXPECT_EQ(policy.tracked(), 0u);
  EXPECT_FALSE(policy.choose_victim(incoming(100)).has_value());
}

TEST(LruMin, WorksInsideCache) {
  CacheConfig config;
  config.capacity_bytes = 10'000;
  Cache cache{config, make_lru_min()};
  cache.access(1, 1, 6000);
  cache.access(2, 2, 3000);
  cache.access(3, 3, 900);
  // Incoming 5000 forces evictions; the 6000-byte doc (>= incoming) goes
  // first, freeing enough in one removal.
  const auto result = cache.access(4, 4, 5000);
  EXPECT_TRUE(result.inserted);
  EXPECT_EQ(result.evictions, 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruMin, DiffersFromLog2SizeApproximation) {
  // §1.2: LRU-MIN thresholds are relative to the incoming size; LOG2SIZE
  // buckets are absolute. An old medium doc and a newer large doc order
  // differently under the two policies when the incoming doc is small.
  LruMinPolicy lru_min;
  SortedPolicy log2{KeySpec{{Key::kLog2Size, Key::kAtime}}};
  for (auto* target : {static_cast<RemovalPolicy*>(&lru_min),
                       static_cast<RemovalPolicy*>(&log2)}) {
    target->on_insert(entry(1, 10'000, 5));   // old, large
    target->on_insert(entry(2, 64'000, 90));  // newest, largest
  }
  // Incoming 8000: LRU-MIN's first threshold (>= 8000) admits both; LRU
  // picks the older doc 1. LOG2SIZE removes one of the largest -> doc 2.
  EXPECT_EQ(lru_min.choose_victim(incoming(8000)), 1u);
  EXPECT_EQ(log2.choose_victim(incoming(8000)), 2u);
}

}  // namespace
}  // namespace wcs
