#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wcs {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table table{"demo"};
  table.header({"name", "value"});
  table.row({"alpha", "1.00"});
  table.row({"beta", "22.50"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumAndPctFormat) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5), "50.00%");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(Table, HandlesRaggedRows) {
  Table table;
  table.header({"a", "b", "c"});
  table.row({"only-one"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_FALSE(table.to_string().empty());
}

TEST(Table, EmptyTableRendersNothing) {
  Table table;
  EXPECT_TRUE(table.to_string().empty());
}

TEST(Series, PrintsGnuplotBlocks) {
  std::ostringstream os;
  print_series(os, "Figure X", {{"curve", {{0.0, 1.0}, {1.0, 2.0}}}});
  const std::string out = os.str();
  EXPECT_NE(out.find("# Figure X"), std::string::npos);
  EXPECT_NE(out.find("# series: curve"), std::string::npos);
  EXPECT_NE(out.find("0 1"), std::string::npos);
  EXPECT_NE(out.find("1 2"), std::string::npos);
}

TEST(Sparkline, MapsRange) {
  const std::string line = sparkline({0.0, 50.0, 100.0}, 0.0, 100.0);
  EXPECT_FALSE(line.empty());
  // First glyph must differ from last (low vs high).
  EXPECT_NE(line.substr(0, 3), line.substr(line.size() - 3));
}

TEST(Sparkline, DegenerateRangeSafe) {
  const std::string line = sparkline({5.0, 5.0}, 5.0, 5.0);
  EXPECT_FALSE(line.empty());
}

}  // namespace
}  // namespace wcs
