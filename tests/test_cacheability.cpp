#include "src/http/cacheability.h"

#include <gtest/gtest.h>

#include "src/http/date.h"

namespace wcs {
namespace {

HttpRequest get_request(std::string target = "http://h/doc.html") {
  HttpRequest request;
  request.method = "GET";
  request.target = std::move(target);
  return request;
}

HttpResponse ok_response() {
  HttpResponse response;
  response.status = 200;
  return response;
}

TEST(Cacheability, PlainGetOkIsCacheable) {
  EXPECT_TRUE(is_cacheable(get_request(), ok_response()));
}

TEST(Cacheability, NonGetIsNot) {
  HttpRequest request = get_request();
  request.method = "POST";
  EXPECT_FALSE(is_cacheable(request, ok_response()));
}

TEST(Cacheability, Non200IsNot) {
  HttpResponse response = ok_response();
  response.status = 404;
  EXPECT_FALSE(is_cacheable(get_request(), response));
  response.status = 304;
  EXPECT_FALSE(is_cacheable(get_request(), response));
}

TEST(Cacheability, PragmaNoCacheBlocks) {
  HttpRequest request = get_request();
  request.headers.set("Pragma", "no-cache");
  EXPECT_FALSE(is_cacheable(request, ok_response()));

  HttpResponse response = ok_response();
  response.headers.set("Pragma", "No-Cache");
  EXPECT_FALSE(is_cacheable(get_request(), response));
}

TEST(Cacheability, DynamicUrlsBlocked) {
  EXPECT_FALSE(is_cacheable(get_request("http://h/cgi-bin/run"), ok_response()));
  EXPECT_FALSE(is_cacheable(get_request("http://h/page?id=3"), ok_response()));
}

TEST(Cacheability, AuthorizationBlocks) {
  HttpRequest request = get_request();
  request.headers.set("Authorization", "Basic abc");
  EXPECT_FALSE(is_cacheable(request, ok_response()));
}

TEST(Conditional, NotModifiedSince) {
  HttpRequest request = get_request();
  request.headers.set("If-Modified-Since", to_http_date(1000));
  EXPECT_TRUE(not_modified_since(request, 500));    // older copy: fresh
  EXPECT_TRUE(not_modified_since(request, 1000));   // equal: fresh
  EXPECT_FALSE(not_modified_since(request, 2000));  // modified after: stale
}

TEST(Conditional, MissingOrBadHeaderIsStale) {
  EXPECT_FALSE(not_modified_since(get_request(), 0));
  HttpRequest request = get_request();
  request.headers.set("If-Modified-Since", "not a date");
  EXPECT_FALSE(not_modified_since(request, 0));
}

TEST(Conditional, LastModifiedExtraction) {
  HttpResponse response = ok_response();
  EXPECT_FALSE(last_modified_of(response).has_value());
  response.headers.set("Last-Modified", to_http_date(777));
  EXPECT_EQ(last_modified_of(response), 777);
  response.headers.set("Last-Modified", "garbage");
  EXPECT_FALSE(last_modified_of(response).has_value());
}

}  // namespace
}  // namespace wcs
