#include "src/core/keys.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace wcs {
namespace {

CacheEntry entry(std::uint64_t size, SimTime etime, SimTime atime, std::uint64_t nref,
                 std::uint64_t tag = 0, UrlId url = 1) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = etime;
  e.atime = atime;
  e.nref = nref;
  e.random_tag = tag;
  return e;
}

TEST(Keys, SizeRankRemovesLargestFirst) {
  // Smaller rank = removed earlier; the larger file must rank smaller.
  EXPECT_LT(key_rank(Key::kSize, entry(5000, 0, 0, 1)),
            key_rank(Key::kSize, entry(100, 0, 0, 1)));
}

TEST(Keys, Log2SizeBucketsTies) {
  // 1200 and 1400 share floor(log2) = 10; 5000 is in bucket 12.
  EXPECT_EQ(key_rank(Key::kLog2Size, entry(1200, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1400, 0, 0, 1)));
  EXPECT_LT(key_rank(Key::kLog2Size, entry(5000, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1200, 0, 0, 1)));
}

TEST(Keys, EtimeRankIsFifo) {
  EXPECT_LT(key_rank(Key::kEtime, entry(1, 10, 99, 1)),
            key_rank(Key::kEtime, entry(1, 20, 5, 1)));
}

TEST(Keys, AtimeRankIsLru) {
  EXPECT_LT(key_rank(Key::kAtime, entry(1, 0, 100, 1)),
            key_rank(Key::kAtime, entry(1, 0, 200, 1)));
}

TEST(Keys, DayAtimeCollapsesWithinDay) {
  const SimTime morning = day_start(3) + 8 * kSecondsPerHour;
  const SimTime evening = day_start(3) + 20 * kSecondsPerHour;
  EXPECT_EQ(key_rank(Key::kDayAtime, entry(1, 0, morning, 1)),
            key_rank(Key::kDayAtime, entry(1, 0, evening, 1)));
  EXPECT_LT(key_rank(Key::kDayAtime, entry(1, 0, morning, 1)),
            key_rank(Key::kDayAtime, entry(1, 0, day_start(4), 1)));
}

TEST(Keys, NrefRankIsLfu) {
  EXPECT_LT(key_rank(Key::kNref, entry(1, 0, 0, 2)), key_rank(Key::kNref, entry(1, 0, 0, 9)));
}

TEST(Keys, RandomRankUsesTag) {
  EXPECT_LT(key_rank(Key::kRandom, entry(1, 0, 0, 1, 10)),
            key_rank(Key::kRandom, entry(1, 0, 0, 1, 20)));
}

TEST(Keys, Names) {
  EXPECT_EQ(to_string(Key::kSize), "SIZE");
  EXPECT_EQ(to_string(Key::kLog2Size), "LOG2SIZE");
  EXPECT_EQ(to_string(Key::kDayAtime), "DAY(ATIME)");
  const KeySpec spec{{Key::kSize, Key::kAtime}};
  EXPECT_EQ(spec.name(), "SIZE+ATIME");
}

TEST(Keys, Experiment2GridHas36Combinations) {
  const auto grid = KeySpec::experiment2_grid();
  EXPECT_EQ(grid.size(), 36u);
  for (const auto& spec : grid) {
    ASSERT_EQ(spec.keys.size(), 2u);
    EXPECT_NE(spec.keys[0], spec.keys[1]);
    EXPECT_NE(spec.keys[0], Key::kRandom);  // random is never a primary
  }
  // All specs distinct.
  std::set<std::string> names;
  for (const auto& spec : grid) names.insert(spec.name());
  EXPECT_EQ(names.size(), 36u);
}

TEST(Keys, RankTupleLexicographicOrder) {
  const KeySpec spec{{Key::kSize, Key::kAtime}};
  const auto big_old = make_rank_tuple(spec, entry(5000, 0, 10, 1, 7, 1));
  const auto big_new = make_rank_tuple(spec, entry(5000, 0, 99, 1, 7, 2));
  const auto small_any = make_rank_tuple(spec, entry(10, 0, 1, 1, 7, 3));
  EXPECT_LT(big_old, big_new);    // size ties broken by atime
  EXPECT_LT(big_new, small_any);  // larger size always first
}

TEST(Keys, RankTupleTiebreaksByTagThenUrl) {
  const KeySpec spec{{Key::kSize}};
  const auto a = make_rank_tuple(spec, entry(100, 0, 0, 1, 5, 1));
  const auto b = make_rank_tuple(spec, entry(100, 0, 0, 1, 5, 2));
  const auto c = make_rank_tuple(spec, entry(100, 0, 0, 1, 9, 1));
  EXPECT_LT(a, b);  // same ranks+tag: url decides
  EXPECT_LT(a, c);  // same ranks: tag decides
  EXPECT_EQ(a, a);
}

// ---- Property test: inline-array tuple == old vector-based tuple ---------

// The pre-inline-array RankTuple, kept verbatim as the comparator oracle:
// ranks in a heap vector, same lexicographic-then-tag-then-url ordering.
struct VectorRankTuple {
  std::vector<std::int64_t> ranks;
  std::uint64_t random_tag = 0;
  UrlId url = kInvalidUrl;

  friend bool operator<(const VectorRankTuple& a, const VectorRankTuple& b) noexcept {
    const std::size_t n = std::min(a.ranks.size(), b.ranks.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.ranks[i] != b.ranks[i]) return a.ranks[i] < b.ranks[i];
    }
    if (a.random_tag != b.random_tag) return a.random_tag < b.random_tag;
    return a.url < b.url;
  }
};

VectorRankTuple vector_rank_tuple(const KeySpec& spec, const CacheEntry& e) {
  VectorRankTuple tuple;
  tuple.ranks.reserve(spec.keys.size());
  for (const Key key : spec.keys) tuple.ranks.push_back(key_rank(key, e));
  tuple.random_tag = e.random_tag;
  tuple.url = e.url;
  return tuple;
}

CacheEntry random_entry(Rng& rng) {
  CacheEntry e;
  e.url = static_cast<UrlId>(rng.below(50));  // small ranges force rank ties
  e.size = rng.below(1 << 20) + 1;
  e.etime = static_cast<SimTime>(rng.below(30 * kSecondsPerDay));
  e.atime = e.etime + static_cast<SimTime>(rng.below(kSecondsPerDay));
  e.nref = rng.below(8) + 1;
  e.random_tag = rng.below(16);
  e.type = kAllFileTypes[rng.below(kFileTypeCount)];
  e.latency_ms = static_cast<std::uint32_t>(rng.below(500));
  return e;
}

TEST(Keys, InlineTupleAgreesWithVectorTupleOnEverySpec) {
  // Every KeySpec the repo ships — the 36-combination Experiment-2 grid,
  // the extension keys, and the deepest (3-key Hyper-G) composite — must
  // order randomized entry pairs exactly as the old vector-based tuple did.
  std::vector<KeySpec> specs = KeySpec::experiment2_grid();
  for (const Key key : kExtensionKeys) {
    specs.push_back(KeySpec{{key}});
    specs.push_back(KeySpec{{key, Key::kSize, Key::kRandom}});
  }
  specs.push_back(KeySpec{{Key::kNref, Key::kAtime, Key::kSize}});  // Hyper-G
  specs.push_back(KeySpec{{Key::kSize}});

  Rng rng{0xA11FEEDULL};
  for (const KeySpec& spec : specs) {
    ASSERT_LE(spec.keys.size(), kMaxRankKeys) << spec.name();
    for (int trial = 0; trial < 200; ++trial) {
      const CacheEntry ea = random_entry(rng);
      const CacheEntry eb = random_entry(rng);
      const RankTuple a = make_rank_tuple(spec, ea);
      const RankTuple b = make_rank_tuple(spec, eb);
      const VectorRankTuple va = vector_rank_tuple(spec, ea);
      const VectorRankTuple vb = vector_rank_tuple(spec, eb);
      ASSERT_EQ(a.count, va.ranks.size()) << spec.name();
      for (std::size_t i = 0; i < va.ranks.size(); ++i) {
        ASSERT_EQ(a.ranks[i], va.ranks[i]) << spec.name() << " key " << i;
      }
      EXPECT_EQ(a < b, va < vb) << spec.name() << " trial " << trial;
      EXPECT_EQ(b < a, vb < va) << spec.name() << " trial " << trial;
      EXPECT_EQ(a < a, false) << spec.name();  // irreflexive
      EXPECT_EQ(a == a, true) << spec.name();
    }
  }
}

TEST(Keys, MakeRankTupleRejectsSpecsDeeperThanInlineCapacity) {
  // The guard is always-on (not an assert): a KeySpec deeper than the
  // inline array would otherwise write out of bounds in release builds.
  KeySpec deep;
  deep.keys.assign(kMaxRankKeys + 1, Key::kSize);
  EXPECT_THROW((void)make_rank_tuple(deep, entry(100, 0, 0, 1)), std::length_error);
}

TEST(Keys, ZeroSizeEntryStillOrders) {
  // The validator prevents zero sizes, but the comparator must stay total.
  EXPECT_GT(key_rank(Key::kLog2Size, entry(0, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1, 0, 0, 1)));
}

}  // namespace
}  // namespace wcs
