#include "src/core/keys.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace wcs {
namespace {

CacheEntry entry(std::uint64_t size, SimTime etime, SimTime atime, std::uint64_t nref,
                 std::uint64_t tag = 0, UrlId url = 1) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = etime;
  e.atime = atime;
  e.nref = nref;
  e.random_tag = tag;
  return e;
}

TEST(Keys, SizeRankRemovesLargestFirst) {
  // Smaller rank = removed earlier; the larger file must rank smaller.
  EXPECT_LT(key_rank(Key::kSize, entry(5000, 0, 0, 1)),
            key_rank(Key::kSize, entry(100, 0, 0, 1)));
}

TEST(Keys, Log2SizeBucketsTies) {
  // 1200 and 1400 share floor(log2) = 10; 5000 is in bucket 12.
  EXPECT_EQ(key_rank(Key::kLog2Size, entry(1200, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1400, 0, 0, 1)));
  EXPECT_LT(key_rank(Key::kLog2Size, entry(5000, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1200, 0, 0, 1)));
}

TEST(Keys, EtimeRankIsFifo) {
  EXPECT_LT(key_rank(Key::kEtime, entry(1, 10, 99, 1)),
            key_rank(Key::kEtime, entry(1, 20, 5, 1)));
}

TEST(Keys, AtimeRankIsLru) {
  EXPECT_LT(key_rank(Key::kAtime, entry(1, 0, 100, 1)),
            key_rank(Key::kAtime, entry(1, 0, 200, 1)));
}

TEST(Keys, DayAtimeCollapsesWithinDay) {
  const SimTime morning = day_start(3) + 8 * kSecondsPerHour;
  const SimTime evening = day_start(3) + 20 * kSecondsPerHour;
  EXPECT_EQ(key_rank(Key::kDayAtime, entry(1, 0, morning, 1)),
            key_rank(Key::kDayAtime, entry(1, 0, evening, 1)));
  EXPECT_LT(key_rank(Key::kDayAtime, entry(1, 0, morning, 1)),
            key_rank(Key::kDayAtime, entry(1, 0, day_start(4), 1)));
}

TEST(Keys, NrefRankIsLfu) {
  EXPECT_LT(key_rank(Key::kNref, entry(1, 0, 0, 2)), key_rank(Key::kNref, entry(1, 0, 0, 9)));
}

TEST(Keys, RandomRankUsesTag) {
  EXPECT_LT(key_rank(Key::kRandom, entry(1, 0, 0, 1, 10)),
            key_rank(Key::kRandom, entry(1, 0, 0, 1, 20)));
}

TEST(Keys, Names) {
  EXPECT_EQ(to_string(Key::kSize), "SIZE");
  EXPECT_EQ(to_string(Key::kLog2Size), "LOG2SIZE");
  EXPECT_EQ(to_string(Key::kDayAtime), "DAY(ATIME)");
  const KeySpec spec{{Key::kSize, Key::kAtime}};
  EXPECT_EQ(spec.name(), "SIZE+ATIME");
}

TEST(Keys, Experiment2GridHas36Combinations) {
  const auto grid = KeySpec::experiment2_grid();
  EXPECT_EQ(grid.size(), 36u);
  for (const auto& spec : grid) {
    ASSERT_EQ(spec.keys.size(), 2u);
    EXPECT_NE(spec.keys[0], spec.keys[1]);
    EXPECT_NE(spec.keys[0], Key::kRandom);  // random is never a primary
  }
  // All specs distinct.
  std::set<std::string> names;
  for (const auto& spec : grid) names.insert(spec.name());
  EXPECT_EQ(names.size(), 36u);
}

TEST(Keys, RankTupleLexicographicOrder) {
  const KeySpec spec{{Key::kSize, Key::kAtime}};
  const auto big_old = make_rank_tuple(spec, entry(5000, 0, 10, 1, 7, 1));
  const auto big_new = make_rank_tuple(spec, entry(5000, 0, 99, 1, 7, 2));
  const auto small_any = make_rank_tuple(spec, entry(10, 0, 1, 1, 7, 3));
  EXPECT_LT(big_old, big_new);    // size ties broken by atime
  EXPECT_LT(big_new, small_any);  // larger size always first
}

TEST(Keys, RankTupleTiebreaksByTagThenUrl) {
  const KeySpec spec{{Key::kSize}};
  const auto a = make_rank_tuple(spec, entry(100, 0, 0, 1, 5, 1));
  const auto b = make_rank_tuple(spec, entry(100, 0, 0, 1, 5, 2));
  const auto c = make_rank_tuple(spec, entry(100, 0, 0, 1, 9, 1));
  EXPECT_LT(a, b);  // same ranks+tag: url decides
  EXPECT_LT(a, c);  // same ranks: tag decides
  EXPECT_EQ(a, a);
}

TEST(Keys, ZeroSizeEntryStillOrders) {
  // The validator prevents zero sizes, but the comparator must stay total.
  EXPECT_GT(key_rank(Key::kLog2Size, entry(0, 0, 0, 1)),
            key_rank(Key::kLog2Size, entry(1, 0, 0, 1)));
}

}  // namespace
}  // namespace wcs
