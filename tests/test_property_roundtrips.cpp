// Parameterized round-trip property suites over randomized inputs:
// serialize/parse identities for the common log format, HTTP dates, HTTP
// messages, and the TCP reassembly + HTTP extraction pipeline under random
// segmentation and delivery order.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/capture/extractor.h"
#include "src/capture/synth.h"
#include "src/http/date.h"
#include "src/http/parser.h"
#include "src/trace/clf.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_token(Rng& rng, std::size_t max_len) {
  static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789-._";
  std::string out;
  const std::size_t len = 1 + rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kChars[rng.below(sizeof(kChars) - 1)];
  }
  return out;
}

TEST_P(RoundTrip, ClfRecordSurvivesFormatParse) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    RawRequest record;
    record.time = static_cast<SimTime>(rng.below(500ULL * kSecondsPerDay));
    record.client = random_token(rng, 24) + ".example";
    record.method = "GET";
    record.url = "http://" + random_token(rng, 12) + ".edu/" + random_token(rng, 30) +
                 (rng.chance(0.5) ? ".html" : ".gif");
    record.status = rng.chance(0.8) ? 200 : (rng.chance(0.5) ? 304 : 404);
    record.size = rng.below(100'000'000);
    const auto reparsed = parse_clf_line(format_clf_line(record));
    ASSERT_TRUE(reparsed.has_value()) << format_clf_line(record);
    EXPECT_EQ(reparsed->time, record.time);
    EXPECT_EQ(reparsed->client, record.client);
    EXPECT_EQ(reparsed->url, record.url);
    EXPECT_EQ(reparsed->status, record.status);
    EXPECT_EQ(reparsed->size, record.size);
  }
}

TEST_P(RoundTrip, HttpDateSurvivesFormatParse) {
  Rng rng{GetParam() ^ 0x11};
  for (int i = 0; i < 500; ++i) {
    // Dates within ~8 years of the 1995 epoch, either side.
    const auto t = static_cast<SimTime>(rng.range(-3000LL * kSecondsPerDay,
                                                  3000LL * kSecondsPerDay));
    const auto parsed = parse_http_date(to_http_date(t));
    ASSERT_TRUE(parsed.has_value()) << to_http_date(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST_P(RoundTrip, HttpRequestSurvivesSerializeParse) {
  Rng rng{GetParam() ^ 0x22};
  for (int i = 0; i < 100; ++i) {
    HttpRequest request;
    request.method = rng.chance(0.8) ? "GET" : "HEAD";
    request.target = "http://" + random_token(rng, 10) + "/" + random_token(rng, 20);
    const std::size_t headers = rng.below(6);
    for (std::size_t h = 0; h < headers; ++h) {
      request.headers.add("X-" + random_token(rng, 8), random_token(rng, 16));
    }
    if (rng.chance(0.3)) {
      request.body = random_token(rng, 64);
      request.headers.set("Content-Length", std::to_string(request.body.size()));
    }
    const auto reparsed = parse_request(request.serialize());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->method, request.method);
    EXPECT_EQ(reparsed->target, request.target);
    EXPECT_EQ(reparsed->body, request.body);
    EXPECT_EQ(reparsed->headers.size(), request.headers.size());
  }
}

TEST_P(RoundTrip, ClfStreamSurvivesWriteRead) {
  Rng rng{GetParam() ^ 0x33};
  std::vector<RawRequest> records;
  for (int i = 0; i < 100; ++i) {
    RawRequest record;
    record.time = static_cast<SimTime>(i * 61);
    record.client = "c" + std::to_string(rng.below(10));
    record.method = "GET";
    record.url = "/d" + std::to_string(rng.below(50)) + ".html";
    record.status = 200;
    record.size = rng.below(1'000'000);
    records.push_back(std::move(record));
  }
  std::stringstream stream;
  write_clf(stream, records);
  const auto read_back = read_clf(stream);
  EXPECT_EQ(read_back.malformed_lines, 0u);
  ASSERT_EQ(read_back.requests.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read_back.requests[i].url, records[i].url);
    EXPECT_EQ(read_back.requests[i].size, records[i].size);
  }
}

TEST_P(RoundTrip, CapturePipelineRecoversAllTransactions) {
  Rng rng{GetParam() ^ 0x44};
  std::vector<SynthExchange> exchanges;
  std::vector<std::uint64_t> body_sizes;
  const std::size_t count = 5 + rng.below(20);
  for (std::size_t i = 0; i < count; ++i) {
    HttpRequest request;
    request.method = "GET";
    request.target = "http://h/" + random_token(rng, 12);
    HttpResponse response;
    response.status = 200;
    const std::uint64_t body = rng.below(5000);
    response.headers.set("Content-Length", std::to_string(body));
    response.body = std::string(body, 'z');
    body_sizes.push_back(body);
    SynthExchange exchange;
    exchange.request = request.serialize();
    exchange.response = response.serialize();
    exchange.start_time = static_cast<std::int64_t>(i);
    exchanges.push_back(std::move(exchange));
  }
  SynthOptions options;
  options.max_segment_bytes = 1 + rng.below(700);
  options.reorder_probability = rng.uniform() * 0.4;
  options.duplicate_probability = rng.uniform() * 0.3;
  options.seed = GetParam();

  std::vector<HttpTransaction> transactions;
  HttpExtractor extractor{[&](const HttpTransaction& t) { transactions.push_back(t); }};
  for (const TcpSegment& segment : synthesize_capture(exchanges, options)) {
    extractor.accept(segment);
  }
  extractor.finish();
  ASSERT_EQ(transactions.size(), exchanges.size());
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    EXPECT_EQ(transactions[i].bytes, body_sizes[i]);
    EXPECT_EQ(transactions[i].status, 200);
  }
  EXPECT_EQ(extractor.parse_failures(), 0u);
}

TEST_P(RoundTrip, ReassemblerOrderInvariance) {
  // Any delivery order of the data segments (SYN first) yields the same
  // byte stream.
  Rng rng{GetParam() ^ 0x55};
  const FlowKey flow{1, 2, 3, 80};
  const std::string message = [&] {
    std::string out;
    const std::size_t len = 50 + rng.below(2000);
    for (std::size_t i = 0; i < len; ++i) {
      out += static_cast<char>('a' + (i * 31 + len) % 26);
    }
    return out;
  }();

  std::vector<TcpSegment> data_segments;
  std::uint32_t seq = 1001;  // SYN at 1000
  std::size_t offset = 0;
  while (offset < message.size()) {
    const std::size_t len = 1 + rng.below(97);
    TcpSegment segment;
    segment.flow = flow;
    segment.seq = seq;
    segment.payload = message.substr(offset, len);
    seq += static_cast<std::uint32_t>(segment.payload.size());
    offset += segment.payload.size();
    data_segments.push_back(std::move(segment));
  }
  // Shuffle deterministically.
  for (std::size_t i = data_segments.size(); i > 1; --i) {
    std::swap(data_segments[i - 1], data_segments[rng.below(i)]);
  }

  std::string delivered;
  StreamReassembler reassembler{
      [&](const FlowKey&, std::string_view bytes, std::int64_t) { delivered.append(bytes); }};
  TcpSegment syn;
  syn.flow = flow;
  syn.seq = 1000;
  syn.syn = true;
  reassembler.accept(syn);
  for (const TcpSegment& segment : data_segments) reassembler.accept(segment);
  EXPECT_EQ(delivered, message);
  EXPECT_EQ(reassembler.flows_with_gaps(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace wcs
