// Bit-identity property suite for the flat policy engine (flat_index.h).
//
// The arena-backed heaps + open-addressing URL table replaced the original
// std::set / std::map indexes. Every comparator ends in the (random_tag,
// url) tiebreak, so each order is strictly total and the heap root is the
// *unique* minimum the old sets surfaced at begin() — the flat engine must
// therefore reproduce the node-based engine's eviction decisions
// bit-for-bit, not just approximately.
//
// This file retains the pre-flat implementations verbatim (Ref* classes
// below, std::set and friends — legal here: tests/ is outside the
// no-node-based-hot-path lint scope) and drives both engines through
// identical workloads: the full 36-spec Experiment-2 grid, 3-key
// composites, LRU-MIN, Pitkow/Recker with periodic sweeps, the expiry
// wrapper, and all five paper presets. Victim sequences, per-access
// results, byte accounting, final snapshots and audit cleanliness must all
// agree exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/cache.h"
#include "src/core/expiry.h"
#include "src/core/keys.h"
#include "src/core/lru_min.h"
#include "src/core/policy.h"
#include "src/core/sorted_policy.h"
#include "src/util/rng.h"
#include "src/workload/spec.h"
#include "src/workload/stream.h"

namespace wcs {
namespace {

// ---- reference engines: the original node-based implementations ----------

/// The pre-flat SortedPolicy: std::set<RankTuple> order + url -> tuple map.
class RefSortedPolicy final : public RemovalPolicy {
 public:
  explicit RefSortedPolicy(KeySpec spec) : spec_(std::move(spec)), name_(spec_.name()) {}

  void on_insert(const CacheEntry& entry) override {
    RankTuple tuple = make_rank_tuple(spec_, entry);
    index_.emplace(entry.url, tuple);
    order_.insert(std::move(tuple));
  }
  void on_hit(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    auto node = order_.extract(it->second);
    node.value() = make_rank_tuple(spec_, entry);
    it->second = node.value();
    order_.insert(std::move(node));
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    order_.erase(it->second);
    index_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext&) override {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->url;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  KeySpec spec_;
  std::string name_;
  std::set<RankTuple> order_;
  std::unordered_map<UrlId, RankTuple> index_;
};

/// The pre-flat LRU-MIN: floor(log2(size)) buckets of std::set<LruKey>.
class RefLruMinPolicy final : public RemovalPolicy {
 public:
  void on_insert(const CacheEntry& entry) override {
    DocState doc{entry.size, LruKey{entry.atime, entry.random_tag, entry.url}};
    state_.emplace(entry.url, doc);
    insert_key(doc);
  }
  void on_hit(const CacheEntry& entry) override {
    auto& doc = state_.at(entry.url);
    erase_key(doc);
    doc.key.atime = entry.atime;
    doc.size = entry.size;
    insert_key(doc);
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = state_.find(entry.url);
    erase_key(it->second);
    state_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override {
    if (state_.empty()) return std::nullopt;
    std::uint64_t threshold = ctx.incoming_size;
    for (;;) {
      if (threshold <= 1) {
        const LruKey* best = nullptr;
        for (const auto& [bucket, keys] : buckets_) {
          const LruKey& front = *keys.begin();
          if (best == nullptr || front < *best) best = &front;
        }
        return best->url;
      }
      const int boundary = bucket_of(threshold);
      const LruKey* best = nullptr;
      for (auto it = buckets_.upper_bound(boundary); it != buckets_.end(); ++it) {
        const LruKey& front = *it->second.begin();
        if (best == nullptr || front < *best) best = &front;
      }
      if (const auto it = buckets_.find(boundary); it != buckets_.end()) {
        for (const LruKey& key : it->second) {
          if (state_.at(key.url).size >= threshold && (best == nullptr || key < *best)) {
            best = &key;
            break;  // keys are LRU-ordered; the first qualifier is the bucket's best
          }
        }
      }
      if (best != nullptr) return best->url;
      threshold /= 2;
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "ref-LRU-MIN"; }

 private:
  struct LruKey {
    SimTime atime;
    std::uint64_t tie;
    UrlId url;
    friend auto operator<=>(const LruKey&, const LruKey&) = default;
  };
  struct DocState {
    std::uint64_t size;
    LruKey key;
  };

  static int bucket_of(std::uint64_t size) noexcept {
    return size == 0 ? 0 : std::bit_width(size) - 1;
  }
  void insert_key(const DocState& doc) { buckets_[bucket_of(doc.size)].insert(doc.key); }
  void erase_key(const DocState& doc) {
    const auto it = buckets_.find(bucket_of(doc.size));
    it->second.erase(doc.key);
    if (it->second.empty()) buckets_.erase(it);
  }

  std::map<int, std::set<LruKey>> buckets_;
  std::unordered_map<UrlId, DocState> state_;
};

/// The pre-flat Pitkow/Recker: twin std::sets over (day, -size) and -size.
class RefPitkowReckerPolicy final : public RemovalPolicy {
 public:
  void on_insert(const CacheEntry& entry) override {
    const auto keys = std::pair{day_key(entry), size_key(entry)};
    index_.emplace(entry.url, keys);
    by_day_.insert(keys.first);
    by_size_.insert(keys.second);
  }
  void on_hit(const CacheEntry& entry) override {
    auto& keys = index_.at(entry.url);
    by_day_.erase(keys.first);
    by_size_.erase(keys.second);
    keys = {day_key(entry), size_key(entry)};
    by_day_.insert(keys.first);
    by_size_.insert(keys.second);
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    by_day_.erase(it->second.first);
    by_size_.erase(it->second.second);
    index_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override {
    if (by_day_.empty()) return std::nullopt;
    const std::int64_t today = day_of(ctx.now);
    const DayKey& oldest = *by_day_.begin();
    if (oldest.day != today) return oldest.url;  // some document is days old
    return by_size_.begin()->url;                // all touched today: largest first
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "ref-P/R"; }

 private:
  struct DayKey {
    std::int64_t day;
    std::int64_t neg_size;
    std::uint64_t tie;
    UrlId url;
    friend auto operator<=>(const DayKey&, const DayKey&) = default;
  };
  struct SizeKey {
    std::int64_t neg_size;
    std::uint64_t tie;
    UrlId url;
    friend auto operator<=>(const SizeKey&, const SizeKey&) = default;
  };
  static DayKey day_key(const CacheEntry& entry) noexcept {
    return DayKey{day_of(entry.atime), -static_cast<std::int64_t>(entry.size),
                  entry.random_tag, entry.url};
  }
  static SizeKey size_key(const CacheEntry& entry) noexcept {
    return SizeKey{-static_cast<std::int64_t>(entry.size), entry.random_tag, entry.url};
  }

  std::set<DayKey> by_day_;
  std::set<SizeKey> by_size_;
  std::unordered_map<UrlId, std::pair<DayKey, SizeKey>> index_;
};

/// The pre-flat expiry wrapper: std::set<(etime, url)> over any inner.
class RefExpiryFirstPolicy final : public RemovalPolicy {
 public:
  RefExpiryFirstPolicy(std::unique_ptr<RemovalPolicy> inner, SimTime ttl)
      : inner_(std::move(inner)), ttl_(ttl) {}

  void on_insert(const CacheEntry& entry) override {
    by_etime_.insert({entry.etime, entry.url});
    inner_->on_insert(entry);
  }
  void on_hit(const CacheEntry& entry) override { inner_->on_hit(entry); }
  void on_remove(const CacheEntry& entry) override {
    by_etime_.erase({entry.etime, entry.url});
    inner_->on_remove(entry);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override {
    if (ttl_ > 0 && !by_etime_.empty()) {
      const auto& oldest = *by_etime_.begin();
      if (ctx.now - oldest.first > ttl_) return oldest.second;
    }
    return inner_->choose_victim(ctx);
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "ref-EXPIRED"; }

 private:
  std::unique_ptr<RemovalPolicy> inner_;
  SimTime ttl_;
  std::set<std::pair<SimTime, UrlId>> by_etime_;
};

// ---- the lock-step harness ------------------------------------------------

struct Step {
  SimTime time;
  UrlId url;
  std::uint64_t size;
};

/// Deterministic mixed workload: repeats, varied size classes, occasional
/// size changes (consistency misses), multi-day time span.
std::vector<Step> random_workload(std::uint64_t seed, std::size_t steps,
                                  std::uint32_t urls = 80) {
  Rng rng{seed};
  std::vector<Step> out;
  out.reserve(steps);
  std::unordered_map<UrlId, std::uint64_t> sizes;
  SimTime now = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    now += static_cast<SimTime>(rng.below(6 * kSecondsPerHour));
    const auto url = static_cast<UrlId>(rng.below(urls));
    // Sizes spread over many log2 classes so LRU-MIN's threshold scan and
    // SIZE's rank order both get real work.
    auto [it, inserted] = sizes.emplace(url, 16ULL << rng.below(12));
    if (!inserted && rng.chance(0.04)) it->second += 1 + rng.below(64);
    out.push_back({now, url, it->second});
  }
  return out;
}

struct EngineRun {
  CacheStats stats;
  std::vector<UrlId> victims;
  std::vector<CacheEntry> snapshot;
};

/// Drives `policy` over `steps`, recording every eviction victim in order.
/// `twin` receives each AccessResult for lock-step comparison; audits run
/// every `audit_every` accesses when nonzero.
EngineRun run_engine(std::unique_ptr<RemovalPolicy> policy, const std::vector<Step>& steps,
                     std::uint64_t capacity, bool periodic, std::size_t audit_every,
                     std::vector<AccessResult>* results) {
  EngineRun run;
  CacheConfig config;
  config.capacity_bytes = capacity;
  config.periodic.enabled = periodic;
  config.on_evict = [&run](const CacheEntry& entry) { run.victims.push_back(entry.url); };
  Cache cache{config, std::move(policy)};
  std::size_t i = 0;
  for (const Step& step : steps) {
    results->push_back(cache.access(step.time, step.url, step.size));
    if (audit_every != 0 && ++i % audit_every == 0) {
      const AuditReport report = cache.audit();
      EXPECT_TRUE(report.ok()) << report.to_string();
    }
  }
  run.stats = cache.stats();
  run.snapshot = cache.snapshot();
  std::sort(run.snapshot.begin(), run.snapshot.end(),
            [](const CacheEntry& a, const CacheEntry& b) { return a.url < b.url; });
  return run;
}

/// Core assertion: the flat engine and its node-based reference make
/// bit-identical decisions on every access.
void expect_bit_identical(std::unique_ptr<RemovalPolicy> flat,
                          std::unique_ptr<RemovalPolicy> reference,
                          const std::vector<Step>& steps, std::uint64_t capacity,
                          bool periodic = false, std::size_t audit_every = 0,
                          const std::string& label = "") {
  std::vector<AccessResult> flat_results;
  std::vector<AccessResult> ref_results;
  const EngineRun a = run_engine(std::move(flat), steps, capacity, periodic, audit_every,
                                 &flat_results);
  const EngineRun b = run_engine(std::move(reference), steps, capacity, periodic, 0,
                                 &ref_results);

  ASSERT_EQ(a.victims.size(), b.victims.size()) << label;
  for (std::size_t i = 0; i < a.victims.size(); ++i) {
    ASSERT_EQ(a.victims[i], b.victims[i]) << label << ": victim #" << i << " diverged";
  }
  ASSERT_EQ(flat_results.size(), ref_results.size()) << label;
  for (std::size_t i = 0; i < flat_results.size(); ++i) {
    ASSERT_EQ(flat_results[i].hit, ref_results[i].hit) << label << ": access #" << i;
    ASSERT_EQ(flat_results[i].inserted, ref_results[i].inserted) << label << ": access #" << i;
    ASSERT_EQ(flat_results[i].evictions, ref_results[i].evictions)
        << label << ": access #" << i;
  }
  EXPECT_EQ(a.stats.hits, b.stats.hits) << label;
  EXPECT_EQ(a.stats.evictions, b.stats.evictions) << label;
  EXPECT_EQ(a.stats.evicted_bytes, b.stats.evicted_bytes) << label;
  EXPECT_EQ(a.stats.insertions, b.stats.insertions) << label;
  EXPECT_EQ(a.stats.max_used_bytes, b.stats.max_used_bytes) << label;

  ASSERT_EQ(a.snapshot.size(), b.snapshot.size()) << label;
  for (std::size_t i = 0; i < a.snapshot.size(); ++i) {
    const CacheEntry& x = a.snapshot[i];
    const CacheEntry& y = b.snapshot[i];
    ASSERT_EQ(x.url, y.url) << label;
    ASSERT_EQ(x.size, y.size) << label;
    ASSERT_EQ(x.etime, y.etime) << label;
    ASSERT_EQ(x.atime, y.atime) << label;
    ASSERT_EQ(x.nref, y.nref) << label;
    ASSERT_EQ(x.random_tag, y.random_tag) << label;
  }
}

// ---- the suites -----------------------------------------------------------

TEST(FlatEngine, Experiment2GridBitIdenticalToReference) {
  const std::vector<Step> steps = random_workload(11, 1'500);
  for (const KeySpec& spec : KeySpec::experiment2_grid()) {
    expect_bit_identical(make_sorted_policy(spec), std::make_unique<RefSortedPolicy>(spec),
                         steps, 60'000, /*periodic=*/false, /*audit_every=*/500,
                         spec.name());
  }
}

TEST(FlatEngine, ThreeKeyCompositesBitIdentical) {
  const std::vector<KeySpec> composites = {
      KeySpec{{Key::kNref, Key::kAtime, Key::kSize}},  // Hyper-G
      KeySpec{{Key::kSize, Key::kNref, Key::kAtime}},
      KeySpec{{Key::kDayAtime, Key::kSize, Key::kRandom}},
  };
  const std::vector<Step> steps = random_workload(12, 2'000);
  for (const KeySpec& spec : composites) {
    expect_bit_identical(make_sorted_policy(spec), std::make_unique<RefSortedPolicy>(spec),
                         steps, 50'000, /*periodic=*/false, /*audit_every=*/250,
                         spec.name());
  }
}

TEST(FlatEngine, LruMinBitIdentical) {
  expect_bit_identical(make_lru_min(), std::make_unique<RefLruMinPolicy>(),
                       random_workload(13, 4'000, 120), 80'000,
                       /*periodic=*/false, /*audit_every=*/250, "LRU-MIN");
}

TEST(FlatEngine, PitkowReckerWithPeriodicSweepBitIdentical) {
  expect_bit_identical(make_pitkow_recker(), std::make_unique<RefPitkowReckerPolicy>(),
                       random_workload(14, 4'000, 120), 80'000,
                       /*periodic=*/true, /*audit_every=*/250, "Pitkow/Recker");
}

TEST(FlatEngine, ExpiryWrapperBitIdentical) {
  expect_bit_identical(
      make_expiry_first(make_lru(), 2 * kSecondsPerDay),
      std::make_unique<RefExpiryFirstPolicy>(
          std::make_unique<RefSortedPolicy>(KeySpec{{Key::kAtime}}), 2 * kSecondsPerDay),
      random_workload(15, 3'000), 40'000,
      /*periodic=*/false, /*audit_every=*/250, "EXPIRED->LRU");
}

TEST(FlatEngine, AllFivePresetsBitIdentical) {
  // One representative policy per preset keeps runtime bounded while every
  // preset's temporal structure (phases, multi-day spans, size mix) runs
  // through the flat engine once.
  struct PresetCase {
    const char* preset;
    std::function<std::unique_ptr<RemovalPolicy>()> flat;
    std::function<std::unique_ptr<RemovalPolicy>()> reference;
  };
  const std::vector<PresetCase> cases = {
      {"U", [] { return make_lru(); },
       [] { return std::make_unique<RefSortedPolicy>(KeySpec{{Key::kAtime}}); }},
      {"G", [] { return make_size(); },
       [] { return std::make_unique<RefSortedPolicy>(KeySpec{{Key::kSize}}); }},
      {"C", [] { return make_lfu(); },
       [] { return std::make_unique<RefSortedPolicy>(KeySpec{{Key::kNref}}); }},
      {"BR", [] { return make_hyper_g(); },
       [] {
         return std::make_unique<RefSortedPolicy>(
             KeySpec{{Key::kNref, Key::kAtime, Key::kSize}});
       }},
      {"BL", [] { return make_lru_min(); }, [] { return std::make_unique<RefLruMinPolicy>(); }},
  };
  for (const PresetCase& c : cases) {
    WorkloadStream stream{WorkloadSpec::preset(c.preset).scaled(0.05)};
    std::vector<Step> steps;
    Request request;
    while (stream.next(request)) steps.push_back({request.time, request.url, request.size});
    ASSERT_GT(steps.size(), 500u) << c.preset;
    expect_bit_identical(c.flat(), c.reference(), steps, 256 * 1024,
                         /*periodic=*/false, /*audit_every=*/1'000, c.preset);
  }
}

}  // namespace
}  // namespace wcs
