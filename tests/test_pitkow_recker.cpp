#include "src/core/pitkow_recker.h"

#include <gtest/gtest.h>

#include "src/core/cache.h"

namespace wcs {
namespace {

CacheEntry entry(UrlId url, std::uint64_t size, SimTime atime, std::uint64_t tag = 0) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = atime;
  e.atime = atime;
  e.nref = 1;
  e.random_tag = tag;
  return e;
}

EvictionContext at(SimTime now) {
  EvictionContext ctx;
  ctx.now = now;
  return ctx;
}

TEST(PitkowRecker, DaysOldDocumentGoesFirst) {
  PitkowReckerPolicy policy;
  policy.on_insert(entry(1, 100, day_start(5) + 100));   // today
  policy.on_insert(entry(2, 9000, day_start(5) + 200));  // today, big
  policy.on_insert(entry(3, 10, day_start(2)));          // 3 days old, tiny
  // Some doc has DAY(ATIME) != today -> day key governs; the tiny but old
  // doc 3 is the victim despite doc 2's size.
  EXPECT_EQ(policy.choose_victim(at(day_start(5) + 300)), 3u);
}

TEST(PitkowRecker, AllTouchedTodayFallsBackToSize) {
  PitkowReckerPolicy policy;
  policy.on_insert(entry(1, 100, day_start(5) + 100));
  policy.on_insert(entry(2, 9000, day_start(5) + 200));
  EXPECT_EQ(policy.choose_victim(at(day_start(5) + 300)), 2u);
}

TEST(PitkowRecker, OldestDayFirstThenLargest) {
  PitkowReckerPolicy policy;
  policy.on_insert(entry(1, 100, day_start(1)));
  policy.on_insert(entry(2, 900, day_start(1) + 10));  // same day, larger
  policy.on_insert(entry(3, 50, day_start(3)));
  EXPECT_EQ(policy.choose_victim(at(day_start(5))), 2u);  // day 1, largest first
}

TEST(PitkowRecker, HitMovesDocumentToToday) {
  PitkowReckerPolicy policy;
  policy.on_insert(entry(1, 100, day_start(1)));
  policy.on_insert(entry(2, 500, day_start(5) + 10));
  CacheEntry touched = entry(1, 100, day_start(5) + 50);
  touched.nref = 2;
  policy.on_hit(touched);
  // Now everything was touched today -> size branch -> doc 2 (larger).
  EXPECT_EQ(policy.choose_victim(at(day_start(5) + 60)), 2u);
}

TEST(PitkowRecker, RemoveUntracks) {
  PitkowReckerPolicy policy;
  const CacheEntry doc = entry(1, 100, day_start(1));
  policy.on_insert(doc);
  policy.on_remove(doc);
  EXPECT_EQ(policy.tracked(), 0u);
  EXPECT_FALSE(policy.choose_victim(at(day_start(2))).has_value());
}

TEST(PitkowRecker, WorksInsideCacheWithDailySweep) {
  CacheConfig config;
  config.capacity_bytes = 1000;
  config.periodic = {true, 0.6};
  Cache cache{config, make_pitkow_recker()};
  cache.access(day_start(0) + 10, 1, 400);
  cache.access(day_start(0) + 20, 2, 400);
  // Crossing into day 1 sweeps down to 600 bytes; the day-0 docs are both
  // "days old", oldest-day-largest-first removes one of them.
  cache.access(day_start(1) + 10, 3, 100);
  EXPECT_LE(cache.used_bytes(), 700u);  // 600 comfort + the new 100-byte doc
  EXPECT_EQ(cache.stats().periodic_sweeps, 1u);
  EXPECT_EQ(cache.entry_count(), 2u);
}

}  // namespace
}  // namespace wcs
