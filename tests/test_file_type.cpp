#include "src/trace/file_type.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(FileType, GraphicsExtensions) {
  EXPECT_EQ(classify_url("/img/logo.gif"), FileType::kGraphics);
  EXPECT_EQ(classify_url("/photo.JPG"), FileType::kGraphics);
  EXPECT_EQ(classify_url("http://h/a/b.jpeg"), FileType::kGraphics);
  EXPECT_EQ(classify_url("/x.xbm"), FileType::kGraphics);
}

TEST(FileType, TextExtensions) {
  EXPECT_EQ(classify_url("/index.html"), FileType::kText);
  EXPECT_EQ(classify_url("/notes.txt"), FileType::kText);
  EXPECT_EQ(classify_url("/paper.ps"), FileType::kText);
  EXPECT_EQ(classify_url("/syllabus.htm"), FileType::kText);
}

TEST(FileType, AudioVideo) {
  EXPECT_EQ(classify_url("/songs/track1.au"), FileType::kAudio);
  EXPECT_EQ(classify_url("/clip.wav"), FileType::kAudio);
  EXPECT_EQ(classify_url("/movie.mpg"), FileType::kVideo);
  EXPECT_EQ(classify_url("/demo.mov"), FileType::kVideo);
}

TEST(FileType, CgiByExtensionAndShape) {
  EXPECT_EQ(classify_url("/cgi-bin/counter"), FileType::kCgi);
  EXPECT_EQ(classify_url("/search?q=web"), FileType::kCgi);
  EXPECT_EQ(classify_url("/run.cgi"), FileType::kCgi);
}

TEST(FileType, DirectoryUrlIsText) {
  // Directory URLs serve index documents.
  EXPECT_EQ(classify_url("/"), FileType::kText);
  EXPECT_EQ(classify_url("/dir/sub/"), FileType::kText);
}

TEST(FileType, UnknownExtensions) {
  EXPECT_EQ(classify_url("/data.dat"), FileType::kUnknown);
  EXPECT_EQ(classify_url("/archive.zip"), FileType::kUnknown);
  EXPECT_EQ(classify_url("/noextension"), FileType::kUnknown);
}

TEST(FileType, ExtensionClassifierDirect) {
  EXPECT_EQ(classify_extension("gif"), FileType::kGraphics);
  EXPECT_EQ(classify_extension("mp3"), FileType::kAudio);
  EXPECT_EQ(classify_extension("qt"), FileType::kVideo);
  EXPECT_EQ(classify_extension("weird"), FileType::kUnknown);
}

TEST(FileType, NamesMatchTable4Rows) {
  EXPECT_EQ(to_string(FileType::kGraphics), "graphics");
  EXPECT_EQ(to_string(FileType::kText), "text/html");
  EXPECT_EQ(to_string(FileType::kAudio), "audio");
  EXPECT_EQ(to_string(FileType::kVideo), "video");
  EXPECT_EQ(to_string(FileType::kCgi), "cgi");
  EXPECT_EQ(to_string(FileType::kUnknown), "unknown");
}

TEST(FileType, AllTypesEnumerated) {
  EXPECT_EQ(kAllFileTypes.size(), kFileTypeCount);
}

}  // namespace
}  // namespace wcs
