#include "src/capture/reassembler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wcs {
namespace {

struct Collector {
  std::string data;
  int fin_count = 0;

  StreamReassembler make() {
    return StreamReassembler{
        [this](const FlowKey&, std::string_view bytes, std::int64_t) {
          data.append(bytes);
        },
        [this](const FlowKey&, std::int64_t) { ++fin_count; }};
  }
};

const FlowKey kFlow{0x0a000001, 0x0a000002, 1234, 80};

TcpSegment seg(std::uint32_t seq, std::string payload, bool syn = false, bool fin = false) {
  TcpSegment s;
  s.flow = kFlow;
  s.seq = seq;
  s.syn = syn;
  s.fin = fin;
  s.payload = std::move(payload);
  return s;
}

TEST(Reassembler, InOrderDelivery) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  reassembler.accept(seg(101, "hello "));
  reassembler.accept(seg(107, "world"));
  EXPECT_EQ(collector.data, "hello world");
}

TEST(Reassembler, OutOfOrderBuffersThenDelivers) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  reassembler.accept(seg(107, "world"));
  EXPECT_EQ(collector.data, "");
  EXPECT_EQ(reassembler.flows_with_gaps(), 1u);
  reassembler.accept(seg(101, "hello "));
  EXPECT_EQ(collector.data, "hello world");
  EXPECT_EQ(reassembler.flows_with_gaps(), 0u);
}

TEST(Reassembler, DuplicateSegmentsDeliverOnce) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  reassembler.accept(seg(101, "abc"));
  reassembler.accept(seg(101, "abc"));
  reassembler.accept(seg(104, "def"));
  EXPECT_EQ(collector.data, "abcdef");
}

TEST(Reassembler, OverlappingRetransmissionTrimmed) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  reassembler.accept(seg(101, "abcd"));
  reassembler.accept(seg(103, "cdEF"));  // overlaps last two delivered bytes
  EXPECT_EQ(collector.data, "abcdEF");
}

TEST(Reassembler, SynCarriesPayload) {
  Collector collector;
  auto reassembler = collector.make();
  TcpSegment s = seg(200, "early", true);
  reassembler.accept(s);
  EXPECT_EQ(collector.data, "early");
}

TEST(Reassembler, FinSignaledOnlyAfterAllData) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  TcpSegment fin = seg(104, "", false, true);
  reassembler.accept(fin);  // data 101..103 still missing
  EXPECT_EQ(collector.fin_count, 0);
  reassembler.accept(seg(101, "xyz"));
  EXPECT_EQ(collector.data, "xyz");
  EXPECT_EQ(collector.fin_count, 1);
}

TEST(Reassembler, FinWithPayload) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  reassembler.accept(seg(101, "bye", false, true));
  EXPECT_EQ(collector.data, "bye");
  EXPECT_EQ(collector.fin_count, 1);
}

TEST(Reassembler, OrphanBytesCounted) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(500, "lost"));  // no SYN seen
  EXPECT_EQ(reassembler.orphan_bytes(), 4u);
  EXPECT_EQ(collector.data, "");
}

TEST(Reassembler, SequenceWraparound) {
  Collector collector;
  auto reassembler = collector.make();
  const std::uint32_t near_wrap = 0xFFFFFFFE;
  reassembler.accept(seg(near_wrap, "", true));
  reassembler.accept(seg(near_wrap + 1, "ab"));  // wraps to 0x00000000+1
  reassembler.accept(seg(1, "cd"));
  EXPECT_EQ(collector.data, "abcd");
}

TEST(Reassembler, IndependentFlows) {
  Collector collector;
  auto reassembler = collector.make();
  reassembler.accept(seg(100, "", true));
  TcpSegment other = seg(100, "", true);
  other.flow = FlowKey{9, 9, 9, 9};
  reassembler.accept(other);
  TcpSegment other_data = seg(101, "B");
  other_data.flow = other.flow;
  reassembler.accept(seg(101, "A"));
  reassembler.accept(other_data);
  EXPECT_EQ(collector.data, "AB");
  EXPECT_EQ(reassembler.active_flows(), 2u);
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const FlowKey reversed = kFlow.reversed();
  EXPECT_EQ(reversed.src_ip, kFlow.dst_ip);
  EXPECT_EQ(reversed.src_port, kFlow.dst_port);
  EXPECT_EQ(reversed.reversed(), kFlow);
}

}  // namespace
}  // namespace wcs
