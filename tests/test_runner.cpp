// ParallelRunner unit tests plus the determinism contract (DESIGN.md):
// fanning the Experiment-2 grid over any job count must produce tables
// bit-identical to a plain serial loop. These tests are also the TSan
// workload for the runner — the tsan preset runs them with real threads.
#include "src/sim/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/sim/experiments.h"

namespace wcs {
namespace {

TEST(Runner, ExplicitJobCountIsRespected) {
  EXPECT_EQ(ParallelRunner{1}.jobs(), 1u);
  EXPECT_EQ(ParallelRunner{3}.jobs(), 3u);
}

TEST(Runner, SingleJobRunsInlineOnCallingThread) {
  ParallelRunner runner{1};
  const std::thread::id caller = std::this_thread::get_id();
  auto future = runner.submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(future.get());
}

TEST(Runner, PoolRunsTasksOffThread) {
  ParallelRunner runner{2};
  const std::thread::id caller = std::this_thread::get_id();
  auto future = runner.submit([caller] { return std::this_thread::get_id() != caller; });
  EXPECT_TRUE(future.get());
}

TEST(Runner, MapCollectsResultsInSubmissionOrder) {
  ParallelRunner runner{4};
  // Early cells sleep longest so completion order inverts submission order;
  // map() must still return results indexed by submission.
  const std::vector<std::size_t> results = runner.map(16, [](std::size_t i) {
    return [i] {
      std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 100));
      return i;
    };
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(results, expected);
}

TEST(Runner, NestedSubmitRunsInlineWithoutDeadlock) {
  // A cell that blocks on a nested submit() of the same runner must not
  // wait for a free worker (there may be none) — nested tasks run inline.
  ParallelRunner runner{2};
  const std::vector<int> results = runner.map(8, [&runner](std::size_t i) {
    return [&runner, i] {
      auto inner = runner.submit([i] { return static_cast<int>(i) * 2; });
      return inner.get() + 1;
    };
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 2 + 1);
  }
}

TEST(Runner, ExceptionsPropagateThroughFutures) {
  ParallelRunner runner{2};
  auto future = runner.submit([]() -> int { throw std::runtime_error{"cell failed"}; });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(Runner, ManyMoreCellsThanWorkers) {
  ParallelRunner runner{2};
  std::atomic<int> ran{0};
  const auto results = runner.map(200, [&ran](std::size_t i) {
    return [&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    };
  });
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(results.size(), 200u);
}

// ---- Determinism contract -------------------------------------------------

void expect_series_identical(const OptSeries& a, const OptSeries& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].has_value(), b[i].has_value()) << what << " day " << i;
    if (a[i].has_value()) {
      // Bit-identical, not approximately equal: the contract is exact.
      EXPECT_EQ(*a[i], *b[i]) << what << " day " << i;
    }
  }
}

void expect_outcome_identical(const PolicyOutcome& a, const PolicyOutcome& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.hr, b.hr) << a.policy;
  EXPECT_EQ(a.whr, b.whr) << a.policy;
  EXPECT_EQ(a.hr_pct_of_infinite, b.hr_pct_of_infinite) << a.policy;
  EXPECT_EQ(a.whr_pct_of_infinite, b.whr_pct_of_infinite) << a.policy;
  expect_series_identical(a.hr_ratio_curve, b.hr_ratio_curve, a.policy + " hr_ratio");
  expect_series_identical(a.whr_ratio_curve, b.whr_ratio_curve, a.policy + " whr_ratio");
}

TEST(RunnerDeterminism, Experiment2GridBitIdenticalAcrossJobCounts) {
  // The ISSUE's acceptance test: the full 36-spec Experiment-2 grid at
  // scale 0.05 must yield the same PolicyOutcome table — every field, bit
  // for bit — whether run by a plain serial loop or fanned over 1, 2 or 8
  // jobs. Per-cell seeding never depends on thread scheduling, and map()
  // gathers in submission order, so any divergence is a real bug.
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset("U").scaled(0.05)}.generate();
  const Experiment1Result infinite = run_experiment1("U", generated.trace);
  const std::vector<KeySpec> grid = KeySpec::experiment2_grid();

  // Serial reference: one spec at a time on a threadless runner — literally
  // a loop of independent simulations.
  ParallelRunner serial{1};
  std::vector<PolicyOutcome> reference;
  reference.reserve(grid.size());
  for (const KeySpec& spec : grid) {
    Experiment2Result one =
        run_experiment2("U", generated.trace, infinite, 0.10, {spec}, serial);
    ASSERT_EQ(one.outcomes.size(), 1u);
    reference.push_back(std::move(one.outcomes.front()));
  }

  for (const unsigned jobs : {1u, 2u, 8u}) {
    ParallelRunner runner{jobs};
    const Experiment2Result result =
        run_experiment2("U", generated.trace, infinite, 0.10, grid, runner);
    ASSERT_EQ(result.outcomes.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " spec=" + grid[i].name());
      expect_outcome_identical(reference[i], result.outcomes[i]);
    }
  }
}

TEST(RunnerDeterminism, LiteraturePoliciesIdenticalAcrossJobCounts) {
  // Same contract for the literature runner, whose Pitkow/Recker cell has
  // the end-of-day sweep — the most stateful policy in the repo.
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset("C").scaled(0.05)}.generate();
  const Experiment1Result infinite = run_experiment1("C", generated.trace);

  ParallelRunner serial{1};
  const Experiment2Result reference =
      run_experiment2_literature("C", generated.trace, infinite, 0.10, serial);
  for (const unsigned jobs : {2u, 8u}) {
    ParallelRunner runner{jobs};
    const Experiment2Result result =
        run_experiment2_literature("C", generated.trace, infinite, 0.10, runner);
    ASSERT_EQ(result.outcomes.size(), reference.outcomes.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      expect_outcome_identical(reference.outcomes[i], result.outcomes[i]);
    }
  }
}

}  // namespace
}  // namespace wcs
