// Delta transfer (§5 open problem 2): codec unit + property tests, and the
// end-to-end origin/proxy integration.
#include "src/http/delta.h"

#include <gtest/gtest.h>

#include "src/http/date.h"
#include "src/proxy/origin.h"
#include "src/proxy/proxy.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

TEST(Delta, IdenticalDocumentsProduceTinyDelta) {
  const std::string document(10'000, 'x');
  const std::string delta = encode_delta(document, document);
  EXPECT_LT(delta.size(), 32u);  // one COPY op
  EXPECT_EQ(apply_delta(document, delta), document);
}

TEST(Delta, EmptyCases) {
  EXPECT_EQ(apply_delta("base", encode_delta("base", "")), "");
  const std::string target = "fresh content with no base at all, long enough to matter";
  EXPECT_EQ(apply_delta("", encode_delta("", target)), target);
}

TEST(Delta, SmallEditSmallDelta) {
  std::string base;
  for (int i = 0; i < 200; ++i) base += "line " + std::to_string(i) + " of the page\n";
  std::string target = base;
  target.replace(1000, 4, "EDIT");
  const std::string delta = encode_delta(base, target);
  EXPECT_LT(delta.size(), target.size() / 10);
  EXPECT_EQ(apply_delta(base, delta), target);
}

TEST(Delta, InsertionAndDeletion) {
  std::string base;
  for (int i = 0; i < 100; ++i) base += "paragraph " + std::to_string(i) + " text text\n";
  std::string target = base;
  target.insert(500, "NEWLY INSERTED SENTENCE. ");
  target.erase(1500, 300);
  const std::string delta = encode_delta(base, target);
  EXPECT_LT(delta.size(), target.size() / 4);
  EXPECT_EQ(apply_delta(base, delta), target);
}

TEST(Delta, CompletelyDifferentFallsBackToLiteral) {
  const std::string base(2000, 'a');
  const std::string target(2000, 'b');
  const std::string delta = encode_delta(base, target);
  EXPECT_EQ(apply_delta(base, delta), target);
  EXPECT_FALSE(delta_worthwhile(base, target));
}

TEST(Delta, RejectsMalformedInput) {
  EXPECT_FALSE(apply_delta("base", "Z???").has_value());
  EXPECT_FALSE(apply_delta("base", "C\x01").has_value());  // truncated
  // COPY beyond the base.
  std::string bad = encode_delta("0123456789012345678901234567890123456789",
                                 "0123456789012345678901234567890123456789");
  EXPECT_TRUE(apply_delta("0123456789012345678901234567890123456789", bad).has_value());
  EXPECT_FALSE(apply_delta("short", bad).has_value());
}

TEST(Delta, RatioAndWorthwhile) {
  std::string base;
  for (int i = 0; i < 500; ++i) base += "stable content block " + std::to_string(i % 7);
  std::string target = base + " appended tail";
  EXPECT_LT(delta_ratio(base, target), 0.1);
  EXPECT_TRUE(delta_worthwhile(base, target));
  EXPECT_FALSE(delta_worthwhile("tiny", "also tiny"));  // below block size
}

class DeltaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaProperty, RandomEditsRoundTrip) {
  Rng rng{GetParam()};
  for (int round = 0; round < 30; ++round) {
    // Random base document.
    std::string base;
    const std::size_t len = 100 + rng.below(5000);
    for (std::size_t i = 0; i < len; ++i) {
      base += static_cast<char>('a' + rng.below(26));
    }
    // Random sequence of edits.
    std::string target = base;
    const int edits = 1 + static_cast<int>(rng.below(6));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = target.empty() ? 0 : rng.below(target.size());
      switch (rng.below(3)) {
        case 0:  // replace
          if (pos < target.size()) target[pos] = static_cast<char>('A' + rng.below(26));
          break;
        case 1:  // insert
          target.insert(pos, std::string(1 + rng.below(50), 'Z'));
          break;
        default:  // erase
          target.erase(pos, rng.below(60));
          break;
      }
    }
    const std::string delta = encode_delta(base, target);
    const auto restored = apply_delta(base, delta);
    ASSERT_TRUE(restored.has_value());
    ASSERT_EQ(*restored, target) << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaProperty, ::testing::Values(11u, 22u, 33u, 44u));

// ---- origin + proxy integration -------------------------------------------

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

TEST(DeltaIntegration, OriginServes226ForPreviousVersion) {
  OriginServer origin{"h"};
  std::string v1;
  for (int i = 0; i < 300; ++i) v1 += "stable line " + std::to_string(i) + "\n";
  origin.put("/page.html", v1, 100);
  std::string v2 = v1;
  v2.replace(40, 6, "edited");
  origin.edit("/page.html", v2, 200);

  HttpRequest request = get("/page.html");
  request.headers.set("If-Modified-Since", to_http_date(100));
  request.headers.set("A-IM", "wcs-delta");
  const HttpResponse response = origin.handle(request, 300);
  EXPECT_EQ(response.status, 226);
  EXPECT_EQ(response.headers.get("IM"), "wcs-delta");
  EXPECT_LT(response.body.size(), v2.size() / 4);
  EXPECT_EQ(apply_delta(v1, response.body), v2);
}

TEST(DeltaIntegration, OriginRefusesDeltaForWrongBase) {
  OriginServer origin{"h"};
  std::string v1(3000, '1');
  origin.put("/p", v1, 100);
  origin.edit("/p", std::string(3000, '2'), 200);
  origin.edit("/p", std::string(3000, '3'), 300);
  // Client holds v1 but the origin only keeps v2 as previous: full 200.
  HttpRequest request = get("/p");
  request.headers.set("If-Modified-Since", to_http_date(100));
  request.headers.set("A-IM", "wcs-delta");
  EXPECT_EQ(origin.handle(request, 400).status, 200);
}

TEST(DeltaIntegration, ProxyAppliesDeltaUpdate) {
  OriginServer origin{"srv.example"};
  std::string v1;
  for (int i = 0; i < 500; ++i) v1 += "content block " + std::to_string(i) + "\n";
  origin.put("/page.html", v1, 10);

  ProxyCache::Config config;
  config.revalidate_after = 100;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     return origin.handle(request, now);
                   }};

  // Warm the cache with v1.
  EXPECT_EQ(proxy.handle(get("http://srv.example/page.html"), 1000).body, v1);

  // Edit upstream; proxy revalidates past the TTL and receives a delta.
  std::string v2 = v1;
  v2.insert(2000, "INSERTED PARAGRAPH. ");
  origin.edit("/page.html", v2, 1500);
  const HttpResponse updated = proxy.handle(get("http://srv.example/page.html"), 2000);
  EXPECT_EQ(updated.status, 200);
  EXPECT_EQ(updated.body, v2);
  EXPECT_EQ(proxy.stats().delta_updates, 1u);
  EXPECT_GT(proxy.stats().delta_bytes_avoided, v2.size() / 2);
  EXPECT_LT(proxy.stats().delta_bytes, v2.size() / 4);

  // The patched copy now serves hits.
  const HttpResponse hit = proxy.handle(get("http://srv.example/page.html"), 2010);
  EXPECT_EQ(hit.headers.get("X-Cache"), "HIT");
  EXPECT_EQ(hit.body, v2);
}

TEST(DeltaIntegration, SameSizeEditUpdatesStoredBody) {
  // Regression: an in-place edit keeps the document length, so re-admitting
  // the patched copy is a cache *hit*, not an insert — the patched body
  // must still replace the stored one, and the next revalidation must get
  // a 304, not another delta.
  OriginServer origin{"srv.example"};
  std::string v1(8000, 'a');
  for (std::size_t i = 0; i < v1.size(); i += 11) v1[i] = static_cast<char>('b' + i % 20);
  origin.put("/p.html", v1, 10);

  ProxyCache::Config config;
  config.revalidate_after = 100;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     return origin.handle(request, now);
                   }};
  (void)proxy.handle(get("http://srv.example/p.html"), 1000);

  std::string v2 = v1;
  v2[4321] = '!';  // same length
  origin.edit("/p.html", v2, 1500);

  const HttpResponse first = proxy.handle(get("http://srv.example/p.html"), 2000);
  EXPECT_EQ(first.body, v2);
  EXPECT_EQ(proxy.stats().delta_updates, 1u);

  // Past the TTL again, with no further edit: must revalidate to a 304
  // (validated_fresh), NOT receive a second delta.
  const HttpResponse second = proxy.handle(get("http://srv.example/p.html"), 3000);
  EXPECT_EQ(second.body, v2);
  EXPECT_EQ(proxy.stats().delta_updates, 1u);
  EXPECT_EQ(proxy.stats().validated_fresh, 1u);
}

TEST(DeltaIntegration, ProxyWithDeltasDisabledFetchesFull) {
  OriginServer origin{"srv.example"};
  std::string v1(5000, 'a');
  for (std::size_t i = 0; i < v1.size(); i += 7) v1[i] = 'b';
  origin.put("/p.html", v1, 10);

  ProxyCache::Config config;
  config.revalidate_after = 100;
  config.accept_deltas = false;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     return origin.handle(request, now);
                   }};
  (void)proxy.handle(get("http://srv.example/p.html"), 1000);
  std::string v2 = v1;
  v2[123] = 'Z';
  origin.edit("/p.html", v2, 1500);
  const HttpResponse updated = proxy.handle(get("http://srv.example/p.html"), 2000);
  EXPECT_EQ(updated.body, v2);
  EXPECT_EQ(proxy.stats().delta_updates, 0u);
}

}  // namespace
}  // namespace wcs
