#include "src/sim/metrics.h"

#include <gtest/gtest.h>

#include "src/core/cache.h"

namespace wcs {
namespace {

TEST(StatsRows, CoversEveryCacheStatsCounter) {
  CacheStats stats;
  stats.requests = 10;
  stats.hits = 4;
  stats.requested_bytes = 1000;
  stats.hit_bytes = 400;
  stats.insertions = 6;
  stats.evictions = 2;
  stats.evicted_bytes = 300;
  stats.size_change_misses = 1;
  stats.rejected_too_large = 1;
  stats.admission_rejects = 2;
  stats.dead_on_arrival_evictions = 1;
  stats.periodic_sweeps = 3;
  stats.max_used_bytes = 900;

  const std::vector<CounterRow> rows = stats_rows(stats);
  // One row per uint64 counter in CacheStats. If you add a counter, extend
  // stats_rows() (tools/lint.py's stats-coverage rule will insist) and bump
  // this expectation.
  ASSERT_EQ(rows.size(), 13u);
  EXPECT_EQ(rows.front().name, "requests");
  EXPECT_EQ(rows.front().value, 10u);
  std::uint64_t sum = 0;
  for (const CounterRow& row : rows) {
    EXPECT_FALSE(row.name.empty());
    sum += row.value;
  }
  EXPECT_EQ(sum, 10u + 4 + 1000 + 400 + 6 + 2 + 300 + 1 + 1 + 2 + 1 + 3 + 900);
}

TEST(DailySeries, DailyRates) {
  DailySeries series;
  series.record(day_start(0) + 10, true, 100);
  series.record(day_start(0) + 20, false, 300);
  series.record(day_start(2) + 10, true, 50);
  const auto hr = series.daily_hr();
  const auto whr = series.daily_whr();
  ASSERT_EQ(hr.size(), 3u);
  EXPECT_DOUBLE_EQ(*hr[0], 0.5);
  EXPECT_FALSE(hr[1].has_value());  // unrecorded day
  EXPECT_DOUBLE_EQ(*hr[2], 1.0);
  EXPECT_DOUBLE_EQ(*whr[0], 0.25);
}

TEST(DailySeries, OverallAndMeanDaily) {
  DailySeries series;
  series.record(day_start(0), true, 100);   // day 0: HR 1.0
  series.record(day_start(1), false, 100);  // day 1: HR 0
  series.record(day_start(1), false, 100);
  EXPECT_DOUBLE_EQ(series.overall_hr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(series.mean_daily_hr(), 0.5);  // days weighted equally
  EXPECT_DOUBLE_EQ(series.overall_whr(), 1.0 / 3.0);
}

TEST(DailySeries, SmoothedSkipsFirstSixRecordedDays) {
  DailySeries series;
  for (int d = 0; d < 10; ++d) {
    series.record(day_start(d), d % 2 == 0, 100);  // alternating 1.0 / 0.0
  }
  const auto smoothed = series.smoothed_hr(7);
  for (int d = 0; d < 6; ++d) EXPECT_FALSE(smoothed[d].has_value()) << d;
  ASSERT_TRUE(smoothed[6].has_value());
  EXPECT_NEAR(*smoothed[6], 4.0 / 7.0, 1e-12);  // days 0,2,4,6 hit
  EXPECT_NEAR(*smoothed[7], 3.0 / 7.0, 1e-12);
}

TEST(DailySeries, SmoothedAveragesRecordedDaysOnly) {
  // Workload C records nothing Fri-Sun; the paper averages the previous
  // seven *recorded* days.
  DailySeries series;
  int recorded = 0;
  for (int d = 0; d < 21 && recorded < 8; ++d) {
    if (d % 7 >= 4) continue;  // skip 3 days a week
    series.record(day_start(d), true, 100);
    ++recorded;
  }
  const auto smoothed = series.smoothed_hr(7);
  // The 7th recorded day lands on calendar day 10 (days 0,1,2,3,7,8,9).
  ASSERT_TRUE(smoothed[9].has_value());
  EXPECT_DOUBLE_EQ(*smoothed[9], 1.0);
  EXPECT_FALSE(smoothed[8].has_value());
  EXPECT_FALSE(smoothed[4].has_value());  // unrecorded day stays empty
}

TEST(DailySeries, RecordHitOnlyAugments) {
  DailySeries series;
  series.record(day_start(0), false, 100);
  series.record_hit_only(day_start(0), 100);
  EXPECT_DOUBLE_EQ(series.overall_hr(), 1.0);  // 1 hit / 1 request
}

TEST(SeriesRatio, ElementwisePercent) {
  std::vector<std::optional<double>> num = {0.5, std::nullopt, 0.2, 0.3};
  std::vector<std::optional<double>> den = {1.0, 0.5, std::nullopt, 0.0};
  const auto ratio = series_ratio(num, den);
  ASSERT_EQ(ratio.size(), 4u);
  EXPECT_DOUBLE_EQ(*ratio[0], 50.0);
  EXPECT_FALSE(ratio[1].has_value());
  EXPECT_FALSE(ratio[2].has_value());
  EXPECT_FALSE(ratio[3].has_value());  // division by zero suppressed
}

TEST(SeriesRatio, SizeMismatchUsesShorter) {
  std::vector<std::optional<double>> num = {1.0, 1.0};
  std::vector<std::optional<double>> den = {2.0};
  EXPECT_EQ(series_ratio(num, den).size(), 1u);
}

TEST(SeriesMean, IgnoresMissing) {
  std::vector<std::optional<double>> series = {std::nullopt, 2.0, 4.0, std::nullopt};
  EXPECT_DOUBLE_EQ(series_mean(series), 3.0);
  EXPECT_DOUBLE_EQ(series_mean({}), 0.0);
}

}  // namespace
}  // namespace wcs
