// Networks of caches (DESIGN.md §14): the multi-tier CacheTopology and its
// chaos sweep.
//   * config validation and deterministic URL-hash routing;
//   * hierarchy semantics — a miss fills through every tier, a stale edge
//     copy revalidates against the regional copy (304 across tiers);
//   * failover — a dead link inside one tier reroutes to a sibling with an
//     independent fault schedule, a dead tier is skipped to the origin;
//   * stale-if-error across tiers — a stale edge copy masks a full
//     upstream outage, Warning: 111 reaches the client exactly once, and
//     nothing fabricates a body;
//   * the resilience gauges (breaker_open_hosts, negative_cache_entries);
//   * the acceptance sweep — run_topology_chaos_sweep is bit-identical
//     across ParallelRunner job counts and, on every preset × fault
//     location, keeps availability at or above the cacheless twin and the
//     hit rate of tiers nearer than the fault within the containment bound
//     (both asserted inside the sweep, re-checked here).
#include "src/proxy/topology.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/proxy/origin.h"
#include "src/sim/chaos.h"
#include "src/sim/runner.h"
#include "src/workload/generator.h"

namespace wcs {
namespace {

constexpr const char* kPresets[] = {"U", "G", "C", "BR", "BL"};

/// Presets at test scale, generated once per binary run (tests run
/// sequentially in one thread).
const Trace& preset_trace(const std::string& name) {
  static auto* traces = new std::map<std::string, Trace>;
  auto it = traces->find(name);
  if (it == traces->end()) {
    WorkloadGenerator generator{WorkloadSpec::preset(name).scaled(0.02)};
    it = traces->emplace(name, std::move(generator.generate().trace)).first;
  }
  return it->second;
}

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

/// An upstream that answers 503 while `failing`, else defers to `origin`.
struct ToggleOrigin {
  OriginServer origin{"srv.example"};
  bool failing = false;

  UpstreamFn fn() {
    return [this](const HttpRequest& request, SimTime now) {
      if (failing) {
        HttpResponse response;
        response.status = 503;
        response.reason = "Service Unavailable";
        return response;
      }
      return origin.handle(request, now);
    };
  }
};

TierConfig tier(const std::string& label, std::uint32_t caches,
                std::uint64_t capacity_bytes, SimTime revalidate_after = 100) {
  TierConfig out;
  out.label = label;
  out.caches = caches;
  out.proxy.capacity_bytes = capacity_bytes;
  out.proxy.revalidate_after = revalidate_after;
  return out;
}

/// The acceptance shape: 4 edge siblings, 2 regional, 1 parent.
TopologyConfig three_tiers() {
  TopologyConfig config;
  config.tiers = {tier("edge", 4, 512ULL << 10), tier("regional", 2, 1ULL << 20),
                  tier("parent", 1, 2ULL << 20)};
  return config;
}

void expect_topology_replays_identical(const TopologyReplayResult& a,
                                       const TopologyReplayResult& b) {
  ASSERT_EQ(a.tiers.size(), b.tiers.size());
  for (std::size_t t = 0; t < a.tiers.size(); ++t) {
    EXPECT_EQ(a.tiers[t].label, b.tiers[t].label);
    EXPECT_EQ(a.tiers[t].stats.requests, b.tiers[t].stats.requests) << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.hits, b.tiers[t].stats.hits) << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.misses, b.tiers[t].stats.misses) << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.validations, b.tiers[t].stats.validations) << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.upstream_failures, b.tiers[t].stats.upstream_failures)
        << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.retries, b.tiers[t].stats.retries) << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.breaker_opens, b.tiers[t].stats.breaker_opens)
        << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.stale_served, b.tiers[t].stats.stale_served)
        << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stats.failed_requests, b.tiers[t].stats.failed_requests)
        << a.tiers[t].label;
    EXPECT_EQ(a.tiers[t].stored_bytes, b.tiers[t].stored_bytes) << a.tiers[t].label;
  }
  EXPECT_EQ(a.router.link_failures, b.router.link_failures);
  EXPECT_EQ(a.router.sibling_failovers, b.router.sibling_failovers);
  EXPECT_EQ(a.router.tier_skips, b.router.tier_skips);
  EXPECT_EQ(a.router.origin_fetches, b.router.origin_fetches);
  EXPECT_EQ(a.availability.served, b.availability.served);
  EXPECT_EQ(a.availability.failed, b.availability.failed);
  EXPECT_EQ(a.client_hits, b.client_hits);
  EXPECT_EQ(a.daily.overall_hr(), b.daily.overall_hr());
}

// ---- construction and routing ---------------------------------------------

TEST(Topology, ValidatesConfiguration) {
  ToggleOrigin origin;
  TopologyConfig empty;
  EXPECT_THROW(CacheTopology(empty, origin.fn()), std::invalid_argument);

  TopologyConfig zero_caches;
  zero_caches.tiers = {tier("edge", 0, 1 << 20)};
  EXPECT_THROW(CacheTopology(zero_caches, origin.fn()), std::invalid_argument);

  TopologyConfig duplicate;
  duplicate.tiers = {tier("edge", 1, 1 << 20), tier("edge", 1, 1 << 20)};
  EXPECT_THROW(CacheTopology(duplicate, origin.fn()), std::invalid_argument);

  TopologyConfig unnamed;
  unnamed.tiers = {tier("", 1, 1 << 20)};
  EXPECT_THROW(CacheTopology(unnamed, origin.fn()), std::invalid_argument);

  TopologyConfig valid = three_tiers();
  EXPECT_THROW(CacheTopology(valid, nullptr), std::invalid_argument);
  CacheTopology topology{valid, origin.fn()};
  EXPECT_EQ(topology.tier_count(), 3u);
  EXPECT_EQ(topology.tier_size(0), 4u);
  EXPECT_EQ(topology.tier_label(1), "regional");
  EXPECT_EQ(topology.total_capacity_bytes(),
            4 * (512ULL << 10) + 2 * (1ULL << 20) + (2ULL << 20));
}

TEST(Topology, RoutingIsDeterministicAndSpreadsSiblings) {
  ToggleOrigin origin;
  CacheTopology topology{three_tiers(), origin.fn()};
  bool spread = false;
  for (int i = 0; i < 64; ++i) {
    const std::string url = "http://h" + std::to_string(i) + ".example/a.html";
    const std::size_t pick = topology.route(0, url);
    EXPECT_EQ(pick, topology.route(0, url));  // stable
    EXPECT_LT(pick, topology.tier_size(0));
    if (pick != topology.route(0, "http://h0.example/a.html")) spread = true;
  }
  EXPECT_TRUE(spread);  // 64 URLs over 4 siblings cannot all collide
}

TEST(Topology, ServesThroughEveryTierAndHitsAtTheEdge) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  config.tiers = {tier("edge", 2, 1 << 20), tier("regional", 1, 1 << 20)};
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  const HttpResponse first = topology.handle(get(url), 100);
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "document body");
  EXPECT_EQ(first.headers.get("X-Cache"), "MISS");  // the edge's verdict
  // The miss filled through both tiers to the origin exactly once.
  EXPECT_EQ(topology.tier_stats(0).misses, 1u);
  EXPECT_EQ(topology.tier_stats(1).misses, 1u);
  EXPECT_EQ(topology.router_stats().origin_fetches, 1u);

  const HttpResponse second = topology.handle(get(url), 110);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.headers.get("X-Cache"), "HIT");
  EXPECT_EQ(topology.tier_stats(0).hits, 1u);
  EXPECT_EQ(topology.tier_stats(1).requests, 1u);  // the hit never left the edge
  EXPECT_TRUE(topology.audit().ok());
}

TEST(Topology, StaleEdgeCopyRevalidatesAgainstRegionalCopy) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  // Edge copies go stale quickly; the regional copy stays fresh far longer.
  config.tiers = {tier("edge", 1, 1 << 20, /*revalidate_after=*/50),
                  tier("regional", 1, 1 << 20, /*revalidate_after=*/100000)};
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  (void)topology.handle(get(url), 100);
  const HttpResponse revalidated = topology.handle(get(url), 100 + 60);
  ASSERT_EQ(revalidated.status, 200);
  EXPECT_EQ(revalidated.headers.get("X-Cache"), "HIT");
  const ProxyCache::Stats edge = topology.tier_stats(0);
  EXPECT_EQ(edge.validations, 1u);
  EXPECT_EQ(edge.validated_fresh, 1u);  // the regional copy answered 304
  // The conditional GET was absorbed by the regional tier; the origin saw
  // only the initial fill.
  EXPECT_EQ(topology.router_stats().origin_fetches, 1u);
}

// ---- failover -------------------------------------------------------------

TEST(Topology, DeadTierIsSkippedToTheOrigin) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  config.tiers = {tier("edge", 1, 1 << 20), tier("regional", 1, 1 << 20)};
  config.tiers[1].downlink.outage = 1.0;  // the regional link is always down
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  const HttpResponse response = topology.handle(get(url), 100);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "document body");
  // The router failed on the regional link, skipped the tier, and filled
  // from the origin — transparently to the edge's availability.
  EXPECT_GE(topology.router_stats().link_failures, 1u);
  EXPECT_GE(topology.router_stats().tier_skips, 1u);
  EXPECT_EQ(topology.router_stats().origin_fetches, 1u);
  EXPECT_EQ(topology.tier_stats(1).requests, 0u);  // the link died before the cache
  EXPECT_EQ(topology.tier_stats(0).failed_requests, 0u);

  const HttpResponse hit = topology.handle(get(url), 110);
  EXPECT_EQ(hit.headers.get("X-Cache"), "HIT");  // the edge copy still landed
}

TEST(Topology, SiblingFailoverUsesIndependentLinkSchedules) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  config.tiers = {tier("edge", 1, 1 << 20), tier("regional", 2, 1 << 20)};
  config.tiers[1].downlink.outage = 0.5;
  config.tiers[1].downlink.outage_window = 100;
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  // The labelled plans ("regional[0]", "regional[1]") draw independent
  // schedules, so somewhere the primary link is down while its sibling is
  // up — exactly the window where sibling failover must carry the request.
  const std::size_t primary = topology.route(1, url);
  const std::size_t sibling = 1 - primary;
  SimTime when = -1;
  bool decorrelated = false;
  for (SimTime t = 50; t < 100 * 1000; t += 100) {
    const FaultKind on_primary = topology.link_plan(1, primary).decide(url, t, 0);
    const FaultKind on_sibling = topology.link_plan(1, sibling).decide(url, t, 0);
    if (on_primary != on_sibling) decorrelated = true;
    if (when < 0 && on_primary == FaultKind::kOutage && on_sibling == FaultKind::kNone) {
      when = t;
    }
  }
  EXPECT_TRUE(decorrelated);
  ASSERT_GE(when, 0) << "no window with primary down and sibling up in 1000 tries";

  const HttpResponse response = topology.handle(get(url), when);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "document body");
  EXPECT_GE(topology.router_stats().sibling_failovers, 1u);
  // The sibling regional cache took the request; the primary never saw it.
  EXPECT_EQ(topology.tier_stats(1).requests, 1u);
  EXPECT_EQ(topology.cache_at(1, sibling).stats().requests, 1u);
  EXPECT_EQ(topology.cache_at(1, primary).stats().requests, 0u);
}

// ---- stale-if-error across tiers ------------------------------------------

TEST(TopologyStaleIfError, StaleEdgeCopyMasksRegionalOutage) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  config.tiers = {tier("edge", 1, 1 << 20, /*revalidate_after=*/50),
                  tier("regional", 1, 1 << 20, /*revalidate_after=*/50)};
  config.tiers[1].downlink.outage = 1.0;  // the regional tier is out for good
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  // Priming already rides the failover: regional is unreachable, the fill
  // comes straight from the origin.
  const HttpResponse primed = topology.handle(get(url), 100);
  ASSERT_EQ(primed.status, 200);

  // Now the origin errors too: the edge's whole upstream world is dark,
  // and its stale copy is the only honest 200 left.
  origin.failing = true;
  const HttpResponse stale = topology.handle(get(url), 100 + 60);
  ASSERT_EQ(stale.status, 200);
  EXPECT_EQ(stale.body, "document body");
  EXPECT_EQ(stale.headers.get("X-Cache"), "HIT");
  int warnings = 0;
  for (const auto& header : stale.headers.all()) {
    if (header.name == "Warning") ++warnings;
  }
  EXPECT_EQ(warnings, 1);  // exactly once, not duplicated per tier
  EXPECT_NE(stale.headers.get("Warning")->find("111"), std::string::npos);
  EXPECT_EQ(topology.tier_stats(0).stale_served, 1u);
  EXPECT_EQ(topology.tier_stats(0).failed_requests, 0u);

  // No copy, no fabrication: an uncached URL surfaces the failure (the
  // origin's 503 passed through, or a synthesized 502/504) with an empty
  // body.
  const HttpResponse failed = topology.handle(get("http://srv.example/b.html"), 100 + 61);
  EXPECT_TRUE(is_upstream_failure(failed)) << failed.status;
  EXPECT_TRUE(failed.body.empty());
  EXPECT_EQ(topology.tier_stats(0).failed_requests, 1u);
}

TEST(TopologyStaleIfError, RegionalWarningReachesTheClientExactlyOnce) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  TopologyConfig config;
  // A storage-less edge: every request passes through to the regional
  // tier, so the client sees the regional tier's stale-if-error answer.
  config.tiers = {tier("edge", 1, /*capacity_bytes=*/1, /*revalidate_after=*/50),
                  tier("regional", 1, 1 << 20, /*revalidate_after=*/50)};
  CacheTopology topology{config, origin.fn()};
  const std::string url = "http://srv.example/a.html";

  (void)topology.handle(get(url), 100);  // primes the regional copy only
  origin.failing = true;
  const HttpResponse masked = topology.handle(get(url), 100 + 60);
  ASSERT_EQ(masked.status, 200);
  EXPECT_EQ(masked.body, "document body");
  int warnings = 0;
  for (const auto& header : masked.headers.all()) {
    if (header.name == "Warning") ++warnings;
  }
  EXPECT_EQ(warnings, 1);  // the regional Warning passes the edge untouched
  EXPECT_EQ(topology.tier_stats(1).stale_served, 1u);
  EXPECT_EQ(topology.tier_stats(0).stale_served, 0u);
  // The client still counts this as answered: nothing fabricated, nothing
  // failed.
  EXPECT_EQ(topology.tier_stats(0).failed_requests, 0u);
}

// ---- resilience gauges ----------------------------------------------------

TEST(Topology, ResilienceGaugesTrackBreakerAndNegativeCache) {
  ToggleOrigin origin;
  origin.origin.put("/a.html", "document body", 10);
  origin.failing = true;
  TopologyConfig config;
  config.tiers = {tier("edge", 1, 1 << 20)};
  config.tiers[0].proxy.resilience.retry.max_attempts = 1;
  config.tiers[0].proxy.resilience.breaker.failure_threshold = 3;
  config.tiers[0].proxy.resilience.breaker.open_duration = 30;
  config.tiers[0].proxy.resilience.breaker.half_open_successes = 1;
  config.tiers[0].proxy.resilience.negative.ttl = 5;
  CacheTopology topology{config, origin.fn()};
  // Distinct URLs on one host: the breaker counts per-host consecutive
  // failures, while the negative cache keys per URL (a repeat of the same
  // URL would fail locally without ever reaching the breaker).
  const std::vector<std::string> urls = {"http://srv.example/a.html",
                                         "http://srv.example/b.html",
                                         "http://srv.example/c.html"};

  SimTime now = 100;
  for (const std::string& url : urls) (void)topology.handle(get(url), now++);
  ProxyCache::Stats stats = topology.tier_stats(0);
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_open_hosts, 1u);  // gauge: the host is open now
  EXPECT_EQ(stats.negative_cache_entries, 3u);

  // Recovery: past the open window the half-open probe succeeds and the
  // breaker closes; each revisit finds its negative entry expired and
  // drops it, so both gauges return to zero.
  origin.failing = false;
  now += 40;
  for (const std::string& url : urls) (void)topology.handle(get(url), now++);
  stats = topology.tier_stats(0);
  EXPECT_EQ(stats.breaker_open_hosts, 0u);
  EXPECT_EQ(stats.negative_cache_entries, 0u);
}

// ---- the chaos acceptance sweep -------------------------------------------

TEST(TopologyChaos, SweepIsBitIdenticalAcrossJobCounts) {
  const Trace& trace = preset_trace("BR");
  TopologyChaosSweepConfig config;
  config.topology = three_tiers();
  config.fault_rates = {0.2};
  config.check_interval = 0;  // end-of-run checks only; speed

  ParallelRunner serial{1};
  ParallelRunner wide{8};
  const TopologyChaosSweepResult a = run_topology_chaos_sweep("BR", trace, config, serial);
  const TopologyChaosSweepResult b = run_topology_chaos_sweep("BR", trace, config, wide);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.cells.size(), 4u);  // baseline + {regional, parent, origin}
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].location, b.cells[i].location);
    EXPECT_EQ(a.cells[i].fault_rate, b.cells[i].fault_rate);
    expect_topology_replays_identical(a.cells[i].with_caches, b.cells[i].with_caches);
    expect_topology_replays_identical(a.cells[i].cacheless, b.cells[i].cacheless);
  }
}

TEST(TopologyChaos, ContainmentHoldsOnEveryPresetAndLocation) {
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace& trace = preset_trace(preset);
    TopologyChaosSweepConfig config;
    config.topology = three_tiers();
    config.fault_rates = {0.10};
    config.check_interval = 2048;

    // The sweep itself throws on any invariant, availability, or
    // containment violation — per tier audit, accounting identity,
    // caches >= cacheless, nearer-tier hit rates within the bound.
    const TopologyChaosSweepResult sweep = run_topology_chaos_sweep(preset, trace, config);
    ASSERT_EQ(sweep.cells.size(), 4u);

    const TopologyChaosCell& baseline = sweep.cells.front();
    EXPECT_EQ(baseline.with_caches.availability.failed, 0u);
    EXPECT_GT(baseline.with_caches.client_hits, 0u);
    for (std::size_t i = 1; i < sweep.cells.size(); ++i) {
      const TopologyChaosCell& cell = sweep.cells[i];
      // Faults really happened somewhere in the network...
      std::uint64_t upstream_failures = 0;
      for (const TierReplayStats& tier_stats : cell.with_caches.tiers) {
        upstream_failures += tier_stats.stats.upstream_failures;
      }
      const bool routed_around = cell.with_caches.router.link_failures > 0;
      EXPECT_TRUE(upstream_failures > 0 || routed_around) << cell.location;
      // ...and the cached network answered at least as often as the twin.
      EXPECT_GE(cell.with_caches.availability.availability(),
                cell.cacheless.availability.availability())
          << cell.location;
    }
  }
}

TEST(TopologyChaos, RejectsUnknownFaultLocation) {
  const Trace& trace = preset_trace("U");
  TopologyChaosSweepConfig config;
  config.topology = three_tiers();
  config.fault_rates = {0.1};
  config.locations = {"backbone"};
  EXPECT_THROW((void)run_topology_chaos_sweep("U", trace, config), std::invalid_argument);
}

}  // namespace
}  // namespace wcs
