#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wcs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng{7};
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{99};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{5};
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{11};
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng{17};
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / static_cast<int>(kBuckets), kSamples / 100);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng{23};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{37};
  int successes = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++successes;
  }
  EXPECT_NEAR(static_cast<double>(successes) / kSamples, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{41};
  Rng child = parent.fork();
  const auto parent_next = parent();
  const auto child_next = child();
  EXPECT_NE(parent_next, child_next);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(1), mix64(2));
  // Avalanche: flipping one input bit flips many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace wcs
