#include "src/http/date.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(HttpDate, FormatsEpoch) {
  // Day 0 of the simulation epoch is 01/Jan/1995, a Sunday.
  EXPECT_EQ(to_http_date(0), "Sun, 01 Jan 1995 00:00:00 GMT");
}

TEST(HttpDate, FormatsWeekdayProgression) {
  EXPECT_EQ(to_http_date(day_start(1)), "Mon, 02 Jan 1995 00:00:00 GMT");
  EXPECT_EQ(to_http_date(day_start(7)), "Sun, 08 Jan 1995 00:00:00 GMT");
}

TEST(HttpDate, ParsesRfc1123) {
  const auto t = parse_http_date("Sun, 01 Jan 1995 00:00:10 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 10);
}

TEST(HttpDate, ParsesRfc850) {
  const auto t = parse_http_date("Sunday, 01-Jan-95 00:00:10 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 10);
}

TEST(HttpDate, ParsesAsctime) {
  const auto t = parse_http_date("Sun Jan 1 00:00:10 1995");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 10);
}

TEST(HttpDate, RoundTripsArbitraryTimes) {
  for (const SimTime t : {SimTime{0}, SimTime{86'399}, SimTime{86'400 * 100 + 12'345},
                          SimTime{86'400 * 400 + 1}}) {
    const auto parsed = parse_http_date(to_http_date(t));
    ASSERT_TRUE(parsed.has_value()) << to_http_date(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(HttpDate, ParsesPre1995Dates) {
  const auto t = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(*t, 0);  // before the simulation epoch
  EXPECT_EQ(to_http_date(*t), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(HttpDate, TwoDigitYearWindow) {
  const auto y95 = parse_http_date("Sunday, 01-Jan-95 00:00:00 GMT");
  ASSERT_TRUE(y95.has_value());
  EXPECT_EQ(*y95, 0);
  const auto y05 = parse_http_date("Saturday, 01-Jan-05 00:00:00 GMT");
  ASSERT_TRUE(y05.has_value());
  EXPECT_GT(*y05, 0);  // 2005, not 1905
}

TEST(HttpDate, RejectsGarbage) {
  EXPECT_FALSE(parse_http_date("").has_value());
  EXPECT_FALSE(parse_http_date("yesterday").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 32 Jan 1995 00:00:00 GMT").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 01 Foo 1995 00:00:00 GMT").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 01 Jan 1995 25:00:00 GMT").has_value());
}

TEST(HttpDate, LeapDay) {
  const auto t = parse_http_date("Thu, 29 Feb 1996 12:00:00 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(to_http_date(*t), "Thu, 29 Feb 1996 12:00:00 GMT");
  EXPECT_FALSE(parse_http_date("Wed, 29 Feb 1995 12:00:00 GMT").has_value());
}

}  // namespace
}  // namespace wcs
