#include "src/obs/recorder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/obs/export.h"
#include "src/sim/chaos.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace wcs {
namespace {

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, FindOrCreateIsIdempotent) {
  MetricRegistry registry;
  Counter& a = registry.counter("wcs_test_total", "help text");
  Counter& b = registry.counter("wcs_test_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  a.inc(4);
  EXPECT_EQ(b.value(), 5u);
  a.set(3);  // snapshot publication overwrites
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  MetricRegistry registry;
  registry.counter("wcs_name");
  EXPECT_THROW(registry.gauge("wcs_name"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("wcs_name", {1, 2}), std::invalid_argument);
}

TEST(ObsRegistry, EntriesKeepRegistrationOrder) {
  MetricRegistry registry;
  registry.counter("wcs_c");
  registry.gauge("wcs_g").set(-7);
  registry.histogram("wcs_h", {10, 100});
  const auto entries = registry.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "wcs_c");
  EXPECT_EQ(entries[0].kind, MetricKind::kCounter);
  EXPECT_EQ(entries[1].name, "wcs_g");
  ASSERT_NE(entries[1].gauge, nullptr);
  EXPECT_EQ(entries[1].gauge->value(), -7);
  EXPECT_EQ(entries[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(registry.find_counter("wcs_c"), entries[0].counter);
  EXPECT_EQ(registry.find_counter("wcs_missing"), nullptr);
}

TEST(ObsRegistry, HistogramBucketsCountAndOverflow) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("wcs_sizes", {10, 100});
  h.observe(5);
  h.observe(10);   // boundary lands in the <= 10 bucket
  h.observe(50);
  h.observe(1000);  // overflow (+Inf) slot
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1065u);
}

TEST(ObsRegistry, ExponentialBoundsDoubleFromLoToHi) {
  const auto bounds = Histogram::exponential_bounds(512, 4096);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{512, 1024, 2048, 4096}));
}

// ------------------------------------------------------------------ events

TEST(ObsEvents, CollectingSinkCopiesDetail) {
  ObsRecorder recorder;
  {
    const std::string transient = "media.cs.vt.edu";
    Event event;
    event.kind = EventKind::kBreakerTransition;
    event.time = 42;
    event.detail = transient;
    recorder.emit(event);
  }  // detail's backing string is gone; the sink must have copied it
  ASSERT_EQ(recorder.event_count(), 1u);
  EXPECT_EQ(recorder.collected().at(0).detail, "media.cs.vt.edu");
  EXPECT_EQ(recorder.event_count_of(EventKind::kBreakerTransition), 1u);
  EXPECT_EQ(recorder.event_count_of(EventKind::kEviction), 0u);
}

TEST(ObsEvents, ClearEventsDrainsButKeepsCollecting) {
  ObsRecorder recorder;
  Event event;
  event.kind = EventKind::kChaosFault;
  event.detail = "latency";
  recorder.emit(event);
  recorder.emit(event);
  ASSERT_EQ(recorder.event_count(), 2u);
  recorder.clear_events();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.event_count_of(EventKind::kChaosFault), 0u);
  // Arena offsets restart cleanly after a drain.
  event.detail = "fail_after";
  recorder.emit(event);
  ASSERT_EQ(recorder.event_count(), 1u);
  EXPECT_EQ(recorder.collected().at(0).detail, "fail_after");
}

TEST(ObsEvents, JsonlFieldRules) {
  // Minimal marker: only "kind" and "t".
  Event marker;
  marker.kind = EventKind::kRunMarker;
  marker.time = 7;
  std::ostringstream minimal;
  write_event_jsonl(minimal, marker, {});
  EXPECT_NE(minimal.str().find("\"kind\": \"run_marker\""), std::string::npos);
  EXPECT_NE(minimal.str().find("\"t\": 7"), std::string::npos);
  EXPECT_EQ(minimal.str().find("url"), std::string::npos);
  EXPECT_EQ(minimal.str().find("ranks"), std::string::npos);

  // Eviction: url, size, and the rank tuple appear.
  Event eviction;
  eviction.kind = EventKind::kEviction;
  eviction.time = 9;
  eviction.url = 3;
  eviction.size = 2048;
  eviction.rank_count = 2;
  eviction.ranks[0] = -2048;
  eviction.ranks[1] = 5;
  std::ostringstream full;
  write_event_jsonl(full, eviction, {});
  EXPECT_NE(full.str().find("\"url\": 3"), std::string::npos);
  EXPECT_NE(full.str().find("\"size\": 2048"), std::string::npos);
  EXPECT_NE(full.str().find("\"ranks\": [-2048, 5]"), std::string::npos);
}

TEST(ObsEvents, JsonQuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
}

// ------------------------------------------------------------------- spans

TEST(ObsSpans, SimSpansAreDeterministic) {
  SpanRecorder spans;
  spans.record_sim_span("day 0", day_start(0), day_start(1));
  const auto snapshot = spans.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "day 0");
  EXPECT_TRUE(snapshot[0].sim_clock);
  EXPECT_EQ(snapshot[0].start, day_start(0));
  EXPECT_EQ(snapshot[0].duration, day_start(1) - day_start(0));
}

TEST(ObsSpans, NullWallScopeRecordsNothing) {
  {
    SpanRecorder::WallScope scope{nullptr, "job", 1};
  }  // must not crash, and there is nothing to record into
  SpanRecorder spans;
  {
    SpanRecorder::WallScope scope{&spans, "job 0", 2};
  }
  ASSERT_EQ(spans.size(), 1u);
  const auto snapshot = spans.snapshot();
  EXPECT_EQ(snapshot[0].track, 2u);
  EXPECT_FALSE(snapshot[0].sim_clock);
  EXPECT_GE(snapshot[0].duration, 0);
}

// ------------------------------------------------------------------ series

TEST(ObsSeries, FindOrCreateReturnsStableReference) {
  ObsRecorder recorder;
  TimeSeries& a = recorder.series("sim");
  TimeSeries& b = recorder.series("sim", "ignored-after-first-use");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.annotation_label(), "");
  TimeSeries& chaos = recorder.series("chaos/0.1/cache", "fault_rate");
  EXPECT_EQ(chaos.annotation_label(), "fault_rate");
  ASSERT_EQ(recorder.all_series().size(), 2u);
  EXPECT_EQ(recorder.all_series()[0]->name(), "sim");
}

// --------------------------------------------------------------- exporters

/// A small recorder with one of everything, for format checks.
void fill_sample(ObsRecorder& recorder) {
  recorder.registry().counter("wcs_requests", "Total requests").set(10);
  recorder.registry().gauge("wcs_depth", "Queue depth").set(-1);
  Histogram& h = recorder.registry().histogram("wcs_bytes", {10, 100}, "Sizes");
  h.observe(5);
  h.observe(1000);
  Event event;
  event.kind = EventKind::kAdmission;
  event.time = 3;
  event.url = 1;
  event.size = 64;
  recorder.emit(event);
  recorder.spans().record_sim_span("day 0", day_start(0), day_start(1));
  SeriesPoint point;
  point.day = 0;
  point.requests = 4;
  point.hits = 1;
  point.bytes = 100;
  point.hit_bytes = 25;
  recorder.series("sim").sample(point);
}

TEST(ObsExport, PrometheusHasCumulativeHistogramBuckets) {
  ObsRecorder recorder;
  fill_sample(recorder);
  std::ostringstream out;
  write_prometheus(out, recorder.registry());
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP wcs_requests Total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wcs_requests counter"), std::string::npos);
  EXPECT_NE(text.find("wcs_requests 10"), std::string::npos);
  EXPECT_NE(text.find("wcs_depth -1"), std::string::npos);
  // Cumulative buckets: le="100" includes the le="10" observation, and
  // +Inf equals the total count.
  EXPECT_NE(text.find("wcs_bytes_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wcs_bytes_bucket{le=\"100\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wcs_bytes_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("wcs_bytes_count 2"), std::string::npos);
  EXPECT_NE(text.find("wcs_bytes_sum 1005"), std::string::npos);
}

TEST(ObsExport, SeriesCsvHeaderAndRow) {
  ObsRecorder recorder;
  fill_sample(recorder);
  std::ostringstream out;
  write_series_csv(out, recorder);
  std::istringstream lines{out.str()};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "series,day,requests,hits,hit_rate,bytes,hit_bytes,byte_hit_rate,"
            "annotation_label,annotation");
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(row.substr(0, 10), "sim,0,4,1,");
}

TEST(ObsExport, ChromeTraceIsWellFormedEnvelope) {
  ObsRecorder recorder;
  fill_sample(recorder);
  std::ostringstream out;
  write_chrome_trace(out, recorder);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{", 0), 0u);  // starts the envelope
  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);  // metadata
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);  // counter sample
  EXPECT_EQ(text.substr(text.size() - 2), "}\n");
}

// ---------------------------------------------- the observer-participation
// property: recording must not change a single bit of any result.

void expect_identical(const SimResult& on, const SimResult& off) {
  EXPECT_EQ(on.stats.requests, off.stats.requests);
  EXPECT_EQ(on.stats.hits, off.stats.hits);
  EXPECT_EQ(on.stats.requested_bytes, off.stats.requested_bytes);
  EXPECT_EQ(on.stats.hit_bytes, off.stats.hit_bytes);
  EXPECT_EQ(on.stats.insertions, off.stats.insertions);
  EXPECT_EQ(on.stats.evictions, off.stats.evictions);
  EXPECT_EQ(on.stats.evicted_bytes, off.stats.evicted_bytes);
  EXPECT_EQ(on.stats.size_change_misses, off.stats.size_change_misses);
  EXPECT_EQ(on.stats.rejected_too_large, off.stats.rejected_too_large);
  EXPECT_EQ(on.stats.admission_rejects, off.stats.admission_rejects);
  EXPECT_EQ(on.stats.dead_on_arrival_evictions, off.stats.dead_on_arrival_evictions);
  EXPECT_EQ(on.stats.periodic_sweeps, off.stats.periodic_sweeps);
  EXPECT_EQ(on.stats.max_used_bytes, off.stats.max_used_bytes);
  EXPECT_EQ(on.max_used_bytes, off.max_used_bytes);
  ASSERT_EQ(on.daily.day_count(), off.daily.day_count());
  for (std::int64_t day = 0; day < on.daily.day_count(); ++day) {
    const auto lhs = on.daily.totals_of_day(day);
    const auto rhs = off.daily.totals_of_day(day);
    EXPECT_EQ(lhs.requests, rhs.requests) << "day " << day;
    EXPECT_EQ(lhs.hits, rhs.hits) << "day " << day;
    EXPECT_EQ(lhs.bytes, rhs.bytes) << "day " << day;
    EXPECT_EQ(lhs.hit_bytes, rhs.hit_bytes) << "day " << day;
  }
}

TEST(ObsIdentity, RecorderNeverPerturbsSimulationAcrossPresets) {
  for (const char* preset : {"U", "G", "C", "BR", "BL"}) {
    WorkloadGenerator generator{WorkloadSpec::preset(preset).scaled(0.02)};
    const Trace trace = generator.generate().trace;
    const std::uint64_t capacity = std::max<std::uint64_t>(trace.unique_bytes() / 10, 1);
    ObsRecorder recorder;
    const SimResult on =
        simulate(trace, capacity, [] { return make_size(); }, {}, {}, &recorder);
    const SimResult off = simulate(trace, capacity, [] { return make_size(); });
    SCOPED_TRACE(preset);
    expect_identical(on, off);
    // And the recorder actually observed the run.
    EXPECT_EQ(recorder.event_count_of(EventKind::kEviction), on.stats.evictions);
    EXPECT_GT(recorder.event_count_of(EventKind::kAdmission), 0u);
    const Counter* requests = recorder.registry().find_counter("wcs_cache_requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value(), on.stats.requests);
  }
}

TEST(ObsIdentity, RecorderNeverPerturbsExperiment2Grid) {
  WorkloadGenerator generator{WorkloadSpec::preset("U").scaled(0.01)};
  const Trace trace = generator.generate().trace;
  const std::uint64_t capacity = std::max<std::uint64_t>(trace.unique_bytes() / 10, 1);
  for (const KeySpec& spec : KeySpec::experiment2_grid()) {
    ObsRecorder recorder;
    const SimResult on = simulate(
        trace, capacity, [&spec] { return make_sorted_policy(spec); }, {}, {}, &recorder);
    const SimResult off =
        simulate(trace, capacity, [&spec] { return make_sorted_policy(spec); });
    SCOPED_TRACE(spec.name());
    expect_identical(on, off);
  }
}

TEST(ObsIdentity, EvictionEventsCarryThePolicyRankTuple) {
  WorkloadGenerator generator{WorkloadSpec::preset("U").scaled(0.01)};
  const Trace trace = generator.generate().trace;
  const std::uint64_t capacity = std::max<std::uint64_t>(trace.unique_bytes() / 10, 1);
  ObsRecorder recorder;
  const KeySpec hyper_g{{Key::kNref, Key::kAtime, Key::kSize}};
  const SimResult result = simulate(
      trace, capacity, [&hyper_g] { return make_sorted_policy(hyper_g); }, {}, {},
      &recorder);
  ASSERT_GT(result.stats.evictions, 0u) << "workload too small to evict";
  std::size_t evictions_seen = 0;
  recorder.collected().for_each([&](const Event& event) {
    if (event.kind != EventKind::kEviction) return;
    ++evictions_seen;
    EXPECT_EQ(event.rank_count, 3u);  // Hyper-G has 3 keys
    EXPECT_NE(event.url, kObsNoUrl);
    EXPECT_GT(event.size, 0u);
  });
  EXPECT_EQ(evictions_seen, result.stats.evictions);
}

TEST(ObsIdentity, RecorderNeverPerturbsProxyReplay) {
  WorkloadGenerator generator{WorkloadSpec::preset("U").scaled(0.01)};
  const Trace trace = generator.generate().trace;
  const auto run = [&trace](ObsRecorder* obs) {
    ProxyReplayConfig config;
    config.proxy.capacity_bytes = std::max<std::uint64_t>(trace.unique_bytes() / 10, 1);
    config.faults = FaultSpec::transient_mix(0.2);
    config.obs = obs;
    TraceSource source{trace};
    return replay_through_proxy(source, config);
  };
  ObsRecorder recorder;
  const ProxyReplayResult on = run(&recorder);
  const ProxyReplayResult off = run(nullptr);
  EXPECT_EQ(on.stats.requests, off.stats.requests);
  EXPECT_EQ(on.stats.hits, off.stats.hits);
  EXPECT_EQ(on.stats.retries, off.stats.retries);
  EXPECT_EQ(on.stats.upstream_failures, off.stats.upstream_failures);
  EXPECT_EQ(on.stats.breaker_opens, off.stats.breaker_opens);
  EXPECT_EQ(on.stats.stale_served, off.stats.stale_served);
  EXPECT_EQ(on.stats.failed_requests, off.stats.failed_requests);
  EXPECT_EQ(on.availability.served, off.availability.served);
  EXPECT_EQ(on.availability.failed, off.availability.failed);
  // Retries surfaced as events match the counter.
  EXPECT_EQ(recorder.event_count_of(EventKind::kUpstreamRetry), on.stats.retries);
}

}  // namespace
}  // namespace wcs
