#include "src/trace/validate.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

RawRequest make_raw(SimTime time, std::string url, int status, std::uint64_t size,
                    std::string method = "GET") {
  RawRequest raw;
  raw.time = time;
  raw.client = "client";
  raw.method = std::move(method);
  raw.url = std::move(url);
  raw.status = status;
  raw.size = size;
  return raw;
}

TEST(Validate, KeepsOnly200) {
  TraceValidator validator;
  EXPECT_TRUE(validator.feed(make_raw(1, "/a.html", 200, 100)));
  EXPECT_FALSE(validator.feed(make_raw(2, "/a.html", 304, 0)));
  EXPECT_FALSE(validator.feed(make_raw(3, "/a.html", 404, 0)));
  EXPECT_FALSE(validator.feed(make_raw(4, "/a.html", 500, 0)));
  EXPECT_EQ(validator.stats().kept, 1u);
  EXPECT_EQ(validator.stats().dropped_status, 3u);
}

TEST(Validate, KeepsOnlyGet) {
  TraceValidator validator;
  EXPECT_FALSE(validator.feed(make_raw(1, "/a.html", 200, 100, "POST")));
  EXPECT_FALSE(validator.feed(make_raw(2, "/a.html", 200, 100, "HEAD")));
  EXPECT_TRUE(validator.feed(make_raw(3, "/a.html", 200, 100, "get")));  // case-insensitive
  EXPECT_EQ(validator.stats().dropped_method, 2u);
}

TEST(Validate, ZeroSizeUnknownUrlDiscarded) {
  // §1.1: "if the log records a size of 0 for a requested URL and that URL
  // has not been encountered before then it is discarded".
  TraceValidator validator;
  EXPECT_FALSE(validator.feed(make_raw(1, "/fresh.html", 200, 0)));
  EXPECT_EQ(validator.stats().dropped_zero_size_unknown, 1u);
  EXPECT_EQ(validator.trace().size(), 0u);
}

TEST(Validate, ZeroSizeKnownUrlGetsLastKnownSize) {
  // §1.1: "if the URL has been encountered before, with a non-zero size,
  // then it is assumed that the URL has not been modified".
  TraceValidator validator;
  ASSERT_TRUE(validator.feed(make_raw(1, "/a.html", 200, 555)));
  ASSERT_TRUE(validator.feed(make_raw(2, "/a.html", 200, 0)));
  const auto& requests = validator.trace().requests();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1].size, 555u);
  EXPECT_EQ(validator.stats().zero_size_resolved, 1u);
}

TEST(Validate, SizeChangeCounted) {
  TraceValidator validator;
  ASSERT_TRUE(validator.feed(make_raw(1, "/a.html", 200, 100)));
  ASSERT_TRUE(validator.feed(make_raw(2, "/a.html", 200, 150)));
  ASSERT_TRUE(validator.feed(make_raw(3, "/a.html", 200, 150)));
  EXPECT_EQ(validator.stats().size_changes, 1u);
}

TEST(Validate, ZeroAfterChangeUsesLatestSize) {
  TraceValidator validator;
  ASSERT_TRUE(validator.feed(make_raw(1, "/a.html", 200, 100)));
  ASSERT_TRUE(validator.feed(make_raw(2, "/a.html", 200, 150)));
  ASSERT_TRUE(validator.feed(make_raw(3, "/a.html", 200, 0)));
  EXPECT_EQ(validator.trace().requests()[2].size, 150u);
}

TEST(Validate, DynamicExclusionOption) {
  ValidationOptions options;
  options.exclude_dynamic = true;
  TraceValidator validator{options};
  EXPECT_FALSE(validator.feed(make_raw(1, "/cgi-bin/x", 200, 10)));
  EXPECT_FALSE(validator.feed(make_raw(2, "/a?q=1", 200, 10)));
  EXPECT_TRUE(validator.feed(make_raw(3, "/a.html", 200, 10)));
  EXPECT_EQ(validator.stats().dropped_dynamic, 2u);
}

TEST(Validate, DynamicKeptByDefault) {
  TraceValidator validator;
  EXPECT_TRUE(validator.feed(make_raw(1, "/cgi-bin/x", 200, 10)));
  EXPECT_EQ(validator.trace().requests()[0].type, FileType::kCgi);
}

TEST(Validate, CompiledRequestFieldsPopulated) {
  TraceValidator validator;
  ASSERT_TRUE(validator.feed(make_raw(7, "http://sv.example/pic.gif", 200, 321)));
  const Request& request = validator.trace().requests()[0];
  EXPECT_EQ(request.time, 7);
  EXPECT_EQ(request.size, 321u);
  EXPECT_EQ(request.type, FileType::kGraphics);
  EXPECT_EQ(validator.trace().server_name(request.server), "sv.example");
  EXPECT_EQ(validator.trace().client_name(request.client), "client");
}

TEST(Validate, BatchHelperMatchesStreaming) {
  std::vector<RawRequest> raw;
  raw.push_back(make_raw(1, "/a.html", 200, 10));
  raw.push_back(make_raw(2, "/a.html", 404, 0));
  raw.push_back(make_raw(3, "/b.html", 200, 20));
  const auto validated = validate(raw);
  EXPECT_EQ(validated.trace.size(), 2u);
  EXPECT_EQ(validated.stats.input, 3u);
  EXPECT_EQ(validated.stats.kept, 2u);
}

}  // namespace
}  // namespace wcs
