// Tests for the §5 open-problem extensions: TYPE and LATENCY sorting keys,
// the latency-savings study, and the shared second-level cache.
#include <gtest/gtest.h>

#include "src/core/cache.h"
#include "src/core/sorted_policy.h"
#include "src/sim/experiments.h"
#include "src/workload/generator.h"

namespace wcs {
namespace {

CacheEntry entry(UrlId url, std::uint64_t size, FileType type, std::uint32_t latency) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.type = type;
  e.latency_ms = latency;
  e.nref = 1;
  return e;
}

TEST(ExtensionKeys, TypeKeyEvictsMediaFirstTextLast) {
  SortedPolicy policy{KeySpec{{Key::kTypePriority}}};
  policy.on_insert(entry(1, 100, FileType::kText, 0));
  policy.on_insert(entry(2, 100, FileType::kVideo, 0));
  policy.on_insert(entry(3, 100, FileType::kGraphics, 0));
  policy.on_insert(entry(4, 100, FileType::kAudio, 0));
  EXPECT_EQ(policy.choose_victim({}), 2u);  // video first
  policy.on_remove(entry(2, 100, FileType::kVideo, 0));
  EXPECT_EQ(policy.choose_victim({}), 4u);  // then audio
  policy.on_remove(entry(4, 100, FileType::kAudio, 0));
  EXPECT_EQ(policy.choose_victim({}), 3u);  // graphics before text
}

TEST(ExtensionKeys, LatencyKeyKeepsExpensiveDocuments) {
  SortedPolicy policy{KeySpec{{Key::kLatency}}};
  policy.on_insert(entry(1, 100, FileType::kText, 500));   // transatlantic
  policy.on_insert(entry(2, 100, FileType::kText, 12));    // local
  policy.on_insert(entry(3, 100, FileType::kText, 80));
  EXPECT_EQ(policy.choose_victim({}), 2u);  // cheapest refetch goes first
}

TEST(ExtensionKeys, KeyNamesAndRanks) {
  EXPECT_EQ(to_string(Key::kTypePriority), "TYPE");
  EXPECT_EQ(to_string(Key::kLatency), "LATENCY");
  EXPECT_LT(key_rank(Key::kLatency, entry(1, 1, FileType::kText, 10)),
            key_rank(Key::kLatency, entry(2, 1, FileType::kText, 90)));
}

TEST(ExtensionKeys, CachePropagatesLatency) {
  CacheConfig config;
  config.capacity_bytes = 1000;
  Cache cache{config, make_lru()};
  cache.access(1, 7, 100, FileType::kText, 321);
  const CacheEntry* stored = cache.find(7);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->latency_ms, 321u);
}

TEST(LatencyModel, DeterministicAndSizeMonotone) {
  const auto a = WorkloadGenerator::estimate_refetch_latency_ms(42, 1000);
  EXPECT_EQ(a, WorkloadGenerator::estimate_refetch_latency_ms(42, 1000));
  EXPECT_LE(a, WorkloadGenerator::estimate_refetch_latency_ms(42, 10'000'000));
  EXPECT_GT(a, 0u);
}

TEST(LatencyModel, GeneratedTracesCarryLatencies) {
  const auto generated =
      WorkloadGenerator{WorkloadSpec::preset("BL").scaled(0.02)}.generate();
  std::size_t with_latency = 0;
  for (const Request& request : generated.trace.requests()) {
    if (request.latency_ms > 0) ++with_latency;
  }
  EXPECT_EQ(with_latency, generated.trace.size());
}

TEST(LatencyStudy, SizeBeatsTheLatencyKeyEvenOnLatencySaved) {
  // The study's (negative) finding on the paper's open problem 1: a pure
  // LATENCY key hoards expensive but *unpopular* documents, so SIZE wins
  // not only on hit rate but on total refetch latency avoided as well —
  // popularity dominates per-hit cost.
  const auto generated =
      WorkloadGenerator{WorkloadSpec::preset("BL").scaled(0.15)}.generate();
  const Experiment1Result infinite = run_experiment1("BL", generated.trace);
  const LatencyStudyResult result =
      run_latency_study("BL", generated.trace, infinite.max_needed, 0.10);
  double latency_key_savings = 0.0;
  double size_savings = 0.0;
  double size_hr = 0.0;
  double latency_hr = 0.0;
  double type_size_hr = 0.0;
  for (const LatencyOutcome& outcome : result.outcomes) {
    if (outcome.policy == "LATENCY") {
      latency_key_savings = outcome.latency_savings;
      latency_hr = outcome.hr;
    }
    if (outcome.policy == "SIZE") {
      size_savings = outcome.latency_savings;
      size_hr = outcome.hr;
    }
    if (outcome.policy == "TYPE+SIZE") type_size_hr = outcome.hr;
  }
  EXPECT_GT(size_savings, latency_key_savings);
  EXPECT_GT(size_hr, latency_hr);
  // TYPE+SIZE lands between the size-blind keys and SIZE on HR.
  EXPECT_GT(type_size_hr, latency_hr);
  EXPECT_LE(type_size_hr, size_hr + 0.01);
}

TEST(SharedL2, SharingBeatsDedicatedOnHitRate) {
  // Different client groups request overlapping documents, so one shared
  // L2 warms faster than per-group L2s — the commonality the paper's open
  // problem 3 asks about.
  const auto generated =
      WorkloadGenerator{WorkloadSpec::preset("BL").scaled(0.15)}.generate();
  const Experiment1Result infinite = run_experiment1("BL", generated.trace);
  const SharedL2Result result =
      run_shared_l2_study("BL", generated.trace, infinite.max_needed, 0.10, 4);
  EXPECT_GT(result.shared_l2_hr, result.dedicated_l2_hr);
  EXPECT_GT(result.shared_l2_whr, result.dedicated_l2_whr);
  EXPECT_GT(result.l1_hr, 0.0);
}

TEST(SharedL2, OneGroupDegeneratesToTwoLevel) {
  const auto generated =
      WorkloadGenerator{WorkloadSpec::preset("BL").scaled(0.05)}.generate();
  const Experiment1Result infinite = run_experiment1("BL", generated.trace);
  const SharedL2Result result =
      run_shared_l2_study("BL", generated.trace, infinite.max_needed, 0.10, 1);
  EXPECT_DOUBLE_EQ(result.shared_l2_hr, result.dedicated_l2_hr);
  EXPECT_DOUBLE_EQ(result.shared_l2_whr, result.dedicated_l2_whr);
  EXPECT_THROW(
      run_shared_l2_study("BL", generated.trace, infinite.max_needed, 0.10, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace wcs
