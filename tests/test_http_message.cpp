#include "src/http/message.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(HeaderMap, AddAndCaseInsensitiveGet) {
  HeaderMap headers;
  headers.add("Content-Type", "text/html");
  EXPECT_EQ(headers.get("content-type"), "text/html");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(headers.get("missing").has_value());
  EXPECT_TRUE(headers.contains("Content-Type"));
}

TEST(HeaderMap, GetReturnsFirstOfDuplicates) {
  HeaderMap headers;
  headers.add("X-Multi", "one");
  headers.add("X-Multi", "two");
  EXPECT_EQ(headers.get("x-multi"), "one");
  EXPECT_EQ(headers.size(), 2u);
}

TEST(HeaderMap, SetReplacesAndDeduplicates) {
  HeaderMap headers;
  headers.add("X-Multi", "one");
  headers.add("X-Multi", "two");
  headers.set("x-multi", "three");
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.get("X-Multi"), "three");
}

TEST(HeaderMap, SetAddsWhenAbsent) {
  HeaderMap headers;
  headers.set("Host", "example.com");
  EXPECT_EQ(headers.get("host"), "example.com");
}

TEST(HeaderMap, RemoveDeletesAllOccurrences) {
  HeaderMap headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  headers.remove("A");
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_FALSE(headers.contains("a"));
}

TEST(HeaderMap, ContentLengthParsing) {
  HeaderMap headers;
  EXPECT_FALSE(headers.content_length().has_value());
  headers.set("Content-Length", " 1234 ");
  EXPECT_EQ(headers.content_length(), 1234u);
  headers.set("Content-Length", "junk");
  EXPECT_FALSE(headers.content_length().has_value());
}

TEST(HttpRequest, Serialize) {
  HttpRequest request;
  request.method = "GET";
  request.target = "http://h/x.html";
  request.headers.add("Accept", "*/*");
  const std::string wire = request.serialize();
  EXPECT_EQ(wire, "GET http://h/x.html HTTP/1.0\r\nAccept: */*\r\n\r\n");
}

TEST(HttpRequest, SerializeWithBody) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/cgi-bin/form.cgi";
  request.headers.add("Content-Length", "5");
  request.body = "a=b&c";
  const std::string wire = request.serialize();
  EXPECT_NE(wire.find("\r\n\r\na=b&c"), std::string::npos);
}

TEST(HttpResponse, Serialize) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.headers.add("Content-Length", "0");
  EXPECT_EQ(response.serialize(), "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n");
}

TEST(ReasonPhrase, KnownAndUnknown) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(304), "Not Modified");
  EXPECT_EQ(reason_phrase(501), "Not Implemented");
  EXPECT_EQ(reason_phrase(299), "Unknown");
}

}  // namespace
}  // namespace wcs
