// Integration tests: the paper's qualitative findings must hold on the
// synthesized workloads. Run on scaled-down presets to stay fast; the bench
// binaries run the full-size versions.
#include "src/sim/experiments.h"

#include <gtest/gtest.h>

#include <map>

namespace wcs {
namespace {

struct Prepared {
  GeneratedWorkload generated;
  Experiment1Result infinite;
};

const Prepared& prepared(const std::string& name) {
  static std::map<std::string, Prepared> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset(name).scaled(0.15)}.generate();
  Experiment1Result infinite = run_experiment1(name, generated.trace);
  return cache.emplace(name, Prepared{std::move(generated), std::move(infinite)})
      .first->second;
}

double hr_of(const Experiment2Result& result, const std::string& policy) {
  for (const auto& outcome : result.outcomes) {
    if (outcome.policy == policy) return outcome.hr;
  }
  ADD_FAILURE() << "policy " << policy << " missing";
  return 0.0;
}

double whr_of(const Experiment2Result& result, const std::string& policy) {
  for (const auto& outcome : result.outcomes) {
    if (outcome.policy == policy) return outcome.whr;
  }
  ADD_FAILURE() << "policy " << policy << " missing";
  return 0.0;
}

std::vector<KeySpec> primary_keys_with_random() {
  std::vector<KeySpec> specs;
  for (const Key key : kPrimaryKeys) specs.push_back(KeySpec{{key, Key::kRandom}});
  return specs;
}

TEST(Experiment1, MaxNeededScalesWithSpec) {
  // At scale 0.15, MaxNeeded should be ~15% of the paper's value.
  const auto& p = prepared("BL");
  const double expected = 0.15 * 408e6;
  EXPECT_NEAR(static_cast<double>(p.infinite.max_needed), expected, expected * 0.3);
}

TEST(Experiment1, BackboneRemoteHitRatesNearPaperValues) {
  const auto& p = prepared("BR");
  // Paper: >98% HR for most of the period, ~95% mean WHR.
  EXPECT_GT(p.infinite.overall_hr, 0.93);
  EXPECT_GT(p.infinite.overall_whr, 0.90);
}

TEST(Experiment1, CampusWorkloadsReachMidRangeHitRates) {
  for (const char* name : {"G", "C"}) {
    const auto& p = prepared(name);
    EXPECT_GT(p.infinite.overall_hr, 0.25) << name;
    EXPECT_LT(p.infinite.overall_hr, 0.85) << name;
  }
}

TEST(Experiment1, SmoothedSeriesAlignedToDays) {
  const auto& p = prepared("BL");
  EXPECT_EQ(static_cast<std::int64_t>(p.infinite.smoothed_hr.size()),
            p.generated.trace.day_count());
}

TEST(Experiment2, SizeMaximizesHitRateEverywhere) {
  // The paper's headline: SIZE (and LOG2SIZE) beat every other primary key
  // on HR, on every workload.
  for (const char* name : {"BL", "G", "C", "BR"}) {
    const auto& p = prepared(name);
    const auto result =
        run_experiment2(name, p.generated.trace, p.infinite, 0.10, primary_keys_with_random());
    const double size_hr = hr_of(result, "SIZE+RANDOM");
    for (const char* other : {"ETIME+RANDOM", "ATIME+RANDOM", "NREF+RANDOM",
                              "DAY(ATIME)+RANDOM"}) {
      EXPECT_GT(size_hr, hr_of(result, other)) << name << " vs " << other;
    }
    EXPECT_NEAR(hr_of(result, "LOG2SIZE+RANDOM"), size_hr, 0.03) << name;
  }
}

TEST(Experiment2, EtimeIsWorstOnHitRate) {
  for (const char* name : {"BL", "G"}) {
    const auto& p = prepared(name);
    const auto result =
        run_experiment2(name, p.generated.trace, p.infinite, 0.10, primary_keys_with_random());
    const double etime_hr = hr_of(result, "ETIME+RANDOM");
    for (const char* other :
         {"SIZE+RANDOM", "ATIME+RANDOM", "NREF+RANDOM", "LOG2SIZE+RANDOM"}) {
      EXPECT_LE(etime_hr, hr_of(result, other) + 0.01) << name << " vs " << other;
    }
  }
}

TEST(Experiment2, SizeIsWorstOnWeightedHitRateForBR) {
  // §4.4: for WHR the results flip — SIZE worst, NREF clearly best on BR.
  // NREF's edge lives in the re-reference counts of the popular audio
  // files, which need a near-full-size corpus: run BR at scale 0.4.
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset("BR").scaled(0.4)}.generate();
  const Experiment1Result infinite = run_experiment1("BR", generated.trace);
  const auto result =
      run_experiment2("BR", generated.trace, infinite, 0.10, primary_keys_with_random());
  const double size_whr = whr_of(result, "SIZE+RANDOM");
  const double nref_whr = whr_of(result, "NREF+RANDOM");
  EXPECT_LT(size_whr, whr_of(result, "ATIME+RANDOM"));
  EXPECT_LT(size_whr, nref_whr);
  EXPECT_GT(nref_whr, whr_of(result, "ATIME+RANDOM"));
  EXPECT_GT(nref_whr, whr_of(result, "ETIME+RANDOM"));
}

TEST(Experiment2, TenPercentCacheNearsOptimalHr) {
  // "some replacement policy achieves ... over 90% of optimal most of the
  // time, even though the cache size is only 10% of MaxNeeded".
  for (const char* name : {"BL", "BR", "C"}) {
    const auto& p = prepared(name);
    const auto result = run_experiment2(name, p.generated.trace, p.infinite, 0.10,
                                        {KeySpec{{Key::kSize, Key::kRandom}}});
    EXPECT_GT(result.outcomes[0].hr_pct_of_infinite, 80.0) << name;
  }
}

TEST(Experiment2, FiftyPercentCacheBeatsTenPercent) {
  const auto& p = prepared("BL");
  const auto at10 = run_experiment2("BL", p.generated.trace, p.infinite, 0.10,
                                    {KeySpec{{Key::kAtime, Key::kRandom}}});
  const auto at50 = run_experiment2("BL", p.generated.trace, p.infinite, 0.50,
                                    {KeySpec{{Key::kAtime, Key::kRandom}}});
  EXPECT_GT(at50.outcomes[0].hr, at10.outcomes[0].hr);
  EXPECT_GT(at50.outcomes[0].whr, at10.outcomes[0].whr);
}

TEST(Experiment2, LiteraturePoliciesRankAsPaperConcludes) {
  // Conclusions: "SIZE first, then NREF, then ATIME", ETIME worst; LRU-MIN
  // among the best.
  const auto& p = prepared("BL");
  const auto result = run_experiment2_literature("BL", p.generated.trace, p.infinite, 0.10);
  const double size_hr = hr_of(result, "SIZE");
  const double lru_min_hr = hr_of(result, "LRU-MIN");
  const double lru_hr = hr_of(result, "LRU");
  const double fifo_hr = hr_of(result, "FIFO");
  const double lfu_hr = hr_of(result, "LFU");
  EXPECT_GT(size_hr, lru_hr);
  EXPECT_GT(size_hr, fifo_hr);
  EXPECT_GT(lfu_hr, lru_hr - 0.02);
  EXPECT_GT(lru_hr, fifo_hr - 0.005);
  EXPECT_GT(lru_min_hr, lru_hr);  // size-awareness helps
  // Pitkow/Recker (day-based) performs poorly, as §5 reports.
  EXPECT_LT(hr_of(result, "Pitkow/Recker"), size_hr);
}

TEST(SecondaryKeys, InsignificantVersusRandom) {
  // Fig 15: no secondary key moves WHR more than ~5% from random, and the
  // average effect is ~1%.
  const auto& p = prepared("G");
  const auto result = run_secondary_key_study("G", p.generated.trace, 0.10);
  ASSERT_EQ(result.outcomes.size(), 5u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_GT(outcome.whr_pct_of_random, 85.0) << outcome.secondary;
    EXPECT_LT(outcome.whr_pct_of_random, 115.0) << outcome.secondary;
    EXPECT_GT(outcome.hr_pct_of_random, 90.0) << outcome.secondary;
    EXPECT_LT(outcome.hr_pct_of_random, 110.0) << outcome.secondary;
  }
}

TEST(Experiment3, SecondLevelWhrExceedsHr) {
  // Figs 16-18: with SIZE in L1, big documents live in L2, so L2's WHR far
  // exceeds its HR.
  for (const char* name : {"BR", "C", "G"}) {
    const auto& p = prepared(name);
    const auto result = run_experiment3(name, p.generated.trace, p.infinite.max_needed, 0.10);
    EXPECT_GT(result.l2_whr, result.l2_hr) << name;
    EXPECT_GT(result.l2_whr, 0.05) << name;
    EXPECT_LT(result.l2_hr, 0.35) << name;
  }
}

TEST(Experiment4, PartitionSweepBehavesMonotonically) {
  const auto& p = prepared("BR");
  const auto result = run_experiment4("BR", p.generated.trace, p.infinite.max_needed, 0.10,
                                      {0.25, 0.5, 0.75});
  ASSERT_EQ(result.curves.size(), 3u);
  // More audio space -> more audio WHR; less non-audio space -> less
  // non-audio WHR.
  EXPECT_LE(result.curves[0].audio_whr, result.curves[1].audio_whr + 0.01);
  EXPECT_LE(result.curves[1].audio_whr, result.curves[2].audio_whr + 0.01);
  EXPECT_GE(result.curves[0].non_audio_whr, result.curves[1].non_audio_whr - 0.01);
  EXPECT_GE(result.curves[1].non_audio_whr, result.curves[2].non_audio_whr - 0.01);
  // Even 3/4 of a 10% cache is overwhelmed by BR's audio volume (Fig 19).
  const double infinite_audio = series_mean(result.infinite_audio_whr);
  const double best_audio = series_mean(result.curves[2].audio_smoothed_whr);
  EXPECT_LT(best_audio, infinite_audio * 0.8);
}

TEST(Experiments, FractionOfGuards) {
  EXPECT_EQ(fraction_of(1000, 0.1), 100u);
  EXPECT_EQ(fraction_of(0, 0.1), 1u);  // never returns 0 (0 = infinite)
  EXPECT_THROW((void)fraction_of(1000, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace wcs
