// The shadow-cache policy selector (src/zoo/selector.h): a single
// candidate is the candidate decision-for-decision, switches land only on
// epoch boundaries, hysteresis blocks near-ties, and the rebuilt index
// stays audit-clean across switches.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

#include "src/core/cache.h"
#include "src/core/policy.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"
#include "src/zoo/gds.h"
#include "src/zoo/selector.h"
#include "src/zoo/slru.h"

namespace wcs {
namespace {

[[nodiscard]] Trace preset_trace(const char* name, double scale = 0.02) {
  return WorkloadGenerator{WorkloadSpec::preset(name).scaled(scale)}.generate().trace;
}

/// A capacity with real eviction pressure: 10% of MaxNeeded (the
/// infinite-cache high-water mark), the study's Experiment-2 sizing.
[[nodiscard]] std::uint64_t pressured_capacity(const Trace& trace) {
  return simulate_infinite(trace).max_used_bytes / 10;
}

void expect_same_stats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.hit_bytes, b.hit_bytes);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.evicted_bytes, b.evicted_bytes);
  EXPECT_EQ(a.max_used_bytes, b.max_used_bytes);
}

/// A two-candidate panel where the incumbent (RANDOM) loses to SIZE on
/// every workload this repo generates — guaranteed switch pressure.
[[nodiscard]] SelectorConfig contested_config(std::uint64_t epoch_events,
                                              std::uint64_t min_advantage) {
  SelectorConfig config;
  config.candidates = {
      {"random", [](std::uint64_t seed) { return make_random(seed); }},
      {"size", [](std::uint64_t seed) { return make_size(seed); }},
  };
  config.sample_rate_log2 = 0;  // full-stream shadows: exact hit counts
  config.epoch_events = epoch_events;
  config.min_advantage = min_advantage;
  config.seed = 99;
  return config;
}

TEST(ZooSelectorTest, RejectsDegenerateConfigs) {
  SelectorConfig empty;
  EXPECT_THROW(ShadowSelectorPolicy{empty}, std::invalid_argument);
  SelectorConfig no_epoch = contested_config(0, 0);
  EXPECT_THROW(ShadowSelectorPolicy{no_epoch}, std::invalid_argument);
}

TEST(ZooSelectorTest, SingleCandidateIsTheCandidateVerbatim) {
  struct Entry {
    const char* name;
    NamedPolicyFactory factory;
  };
  const Entry entries[] = {
      {"gdsf", [](std::uint64_t seed) { return make_gdsf(seed); }},
      {"slru", [](std::uint64_t seed) { return make_slru(seed); }},
  };
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  for (const Entry& entry : entries) {
    SCOPED_TRACE(entry.name);
    const SimResult bare = simulate(trace, capacity, [&] { return entry.factory(42); });
    SelectorConfig config;
    config.candidates = {{entry.name, entry.factory}};
    config.seed = 42;  // the inner policy is built with the config seed
    const SimResult wrapped =
        simulate(trace, capacity, [&] { return make_shadow_selector(config); });
    expect_same_stats(bare.stats, wrapped.stats);
    EXPECT_EQ(bare.daily.overall_hr(), wrapped.daily.overall_hr());
    EXPECT_EQ(bare.daily.overall_whr(), wrapped.daily.overall_whr());
  }
}

TEST(ZooSelectorTest, SwitchesHappenOnlyAtEpochBoundaries) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  constexpr std::uint64_t kEpochEvents = 256;
  auto policy = std::make_unique<ShadowSelectorPolicy>(contested_config(kEpochEvents, 0));
  const ShadowSelectorPolicy* selector = policy.get();
  CacheConfig config;
  config.capacity_bytes = capacity;
  Cache cache{config, std::move(policy)};
  std::uint64_t events = 0;
  for (const Request& request : trace.requests()) {
    const AccessResult result = cache.access(request);
    if (result.hit || result.inserted) ++events;
  }
  // SIZE dominates RANDOM, so the contested panel must have switched.
  EXPECT_GE(selector->switches(), 1u);
  EXPECT_EQ(selector->current_name(), "size");
  // Every decision — switching or not — sits exactly on an epoch boundary,
  // and the log covers every completed epoch.
  EXPECT_EQ(selector->epoch_log().size(), events / kEpochEvents);
  std::uint64_t expected_epoch = 0;
  for (const EpochChoice& choice : selector->epoch_log()) {
    EXPECT_EQ(choice.epoch, expected_epoch++);
    EXPECT_EQ(choice.event_index % kEpochEvents, 0u);
    EXPECT_EQ(choice.event_index, choice.epoch * kEpochEvents + kEpochEvents);
    ASSERT_EQ(choice.shadow_hits.size(), 2u);
    EXPECT_TRUE(choice.chosen == "random" || choice.chosen == "size");
  }
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooSelectorTest, HysteresisBlocksEverySwitch) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  auto policy = std::make_unique<ShadowSelectorPolicy>(
      contested_config(256, std::numeric_limits<std::uint64_t>::max() / 2));
  const ShadowSelectorPolicy* selector = policy.get();
  CacheConfig config;
  config.capacity_bytes = capacity;
  Cache cache{config, std::move(policy)};
  for (const Request& request : trace.requests()) (void)cache.access(request);
  EXPECT_EQ(selector->switches(), 0u);
  EXPECT_EQ(selector->current_index(), 0u);  // still the inferior incumbent
  EXPECT_EQ(selector->current_name(), "random");
  for (const EpochChoice& choice : selector->epoch_log()) {
    EXPECT_FALSE(choice.switched);
    EXPECT_EQ(choice.chosen, "random");
  }
}

TEST(ZooSelectorTest, SameSeedSameSwitchTrajectory) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  const auto run = [&] {
    const SimResult result = simulate(trace, capacity, [] {
      return make_adaptive_selector(7);
    });
    return result;
  };
  const SimResult a = run();
  const SimResult b = run();
  expect_same_stats(a.stats, b.stats);
  EXPECT_EQ(a.daily.overall_hr(), b.daily.overall_hr());
  EXPECT_EQ(a.daily.overall_whr(), b.daily.overall_whr());
}

TEST(ZooSelectorTest, AuditStaysCleanAcrossSwitches) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  SimAudit audit;
  audit.interval = 500;  // sweeps the mirror, inner index and every shadow
  EXPECT_NO_THROW((void)simulate(trace, capacity, [] {
    return make_shadow_selector(contested_config(256, 0));
  }, {}, audit));
}

TEST(ZooSelectorTest, ShadowCachesExposePerCandidateStats) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = pressured_capacity(trace);
  auto policy = std::make_unique<ShadowSelectorPolicy>(contested_config(256, 0));
  const ShadowSelectorPolicy* selector = policy.get();
  CacheConfig config;
  config.capacity_bytes = capacity;
  Cache cache{config, std::move(policy)};
  for (const Request& request : trace.requests()) (void)cache.access(request);
  ASSERT_EQ(selector->candidate_count(), 2u);
  // Full-stream shadows saw every request the live cache did.
  EXPECT_EQ(selector->shadow(0).stats().requests, selector->shadow(1).stats().requests);
  EXPECT_GT(selector->shadow(0).stats().requests, 0u);
  // The winning candidate's shadow out-hit the loser's.
  EXPECT_GT(selector->shadow(1).stats().hits, selector->shadow(0).stats().hits);
}

}  // namespace
}  // namespace wcs
