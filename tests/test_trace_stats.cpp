#include "src/trace/trace_stats.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

Trace tiny_trace() {
  Trace trace;
  const UrlId gif = trace.intern_url("http://s1/a.gif");
  const UrlId html = trace.intern_url("http://s1/b.html");
  const UrlId au = trace.intern_url("http://s2/c.au");
  auto add = [&](SimTime t, UrlId u, std::uint64_t size, FileType type) {
    Request r;
    r.time = t;
    r.url = u;
    r.size = size;
    r.type = type;
    r.server = trace.server_of(u);
    trace.add(r);
  };
  add(1, gif, 100, FileType::kGraphics);
  add(2, gif, 100, FileType::kGraphics);
  add(3, html, 50, FileType::kText);
  add(10, au, 1000, FileType::kAudio);
  return trace;
}

TEST(TraceStats, FileTypeDistribution) {
  const auto dist = file_type_distribution(tiny_trace());
  EXPECT_EQ(dist.total_refs, 4u);
  EXPECT_EQ(dist.total_bytes, 1250u);
  EXPECT_DOUBLE_EQ(dist.ref_fraction(FileType::kGraphics), 0.5);
  EXPECT_DOUBLE_EQ(dist.byte_fraction(FileType::kAudio), 0.8);
  EXPECT_DOUBLE_EQ(dist.ref_fraction(FileType::kVideo), 0.0);
}

TEST(TraceStats, EmptyDistributionSafe) {
  const auto dist = file_type_distribution(Trace{});
  EXPECT_DOUBLE_EQ(dist.ref_fraction(FileType::kText), 0.0);
  EXPECT_DOUBLE_EQ(dist.byte_fraction(FileType::kText), 0.0);
}

TEST(TraceStats, ServerRanking) {
  const auto ranked = requests_per_server_ranked(tiny_trace());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 3u);  // s1 served gif,gif,html
  EXPECT_EQ(ranked[1], 1u);
}

TEST(TraceStats, UrlByteRanking) {
  const auto ranked = bytes_per_url_ranked(tiny_trace());
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 1000u);
  EXPECT_EQ(ranked[1], 200u);
  EXPECT_EQ(ranked[2], 50u);
}

TEST(TraceStats, ZipfExponentOfPerfectZipf) {
  // counts proportional to 1/k -> slope 1.
  std::vector<std::uint64_t> ranked;
  for (int k = 1; k <= 1000; ++k) ranked.push_back(static_cast<std::uint64_t>(1'000'000 / k));
  EXPECT_NEAR(zipf_exponent_estimate(ranked), 1.0, 0.02);
}

TEST(TraceStats, ZipfExponentDegenerate) {
  EXPECT_DOUBLE_EQ(zipf_exponent_estimate({}), 0.0);
  EXPECT_DOUBLE_EQ(zipf_exponent_estimate({5}), 0.0);
  EXPECT_NEAR(zipf_exponent_estimate({7, 7, 7, 7}), 0.0, 1e-9);
}

TEST(TraceStats, SizeHistogram) {
  const auto hist = request_size_histogram(tiny_trace(), 2000.0, 20);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(0), 1u);   // the 50-byte html file, [0, 100)
  EXPECT_EQ(hist.count(1), 2u);   // the two 100-byte gif requests, [100, 200)
  EXPECT_EQ(hist.count(10), 1u);  // the 1000-byte audio file
}

TEST(TraceStats, InterreferenceSamples) {
  const auto samples = interreference_samples(tiny_trace());
  ASSERT_EQ(samples.size(), 1u);  // only the gif repeats
  EXPECT_EQ(samples[0].size, 100u);
  EXPECT_EQ(samples[0].gap, 1);
}

TEST(TraceStats, InterreferenceSummary) {
  std::vector<InterreferenceSample> samples = {
      {100, 10}, {200, kSecondsPerHour + 1}, {300, 2 * kSecondsPerHour}};
  const auto summary = summarize_interreference(samples);
  EXPECT_EQ(summary.samples, 3u);
  EXPECT_DOUBLE_EQ(summary.median_size, 200.0);
  EXPECT_NEAR(summary.fraction_gap_over_hour, 2.0 / 3.0, 1e-9);
}

TEST(TraceStats, InterreferenceSummaryEmpty) {
  const auto summary = summarize_interreference({});
  EXPECT_EQ(summary.samples, 0u);
  EXPECT_DOUBLE_EQ(summary.median_size, 0.0);
}

TEST(TraceStats, CountForMassFraction) {
  const std::vector<std::uint64_t> ranked = {50, 30, 10, 5, 5};
  EXPECT_EQ(count_for_mass_fraction(ranked, 0.5), 1u);
  EXPECT_EQ(count_for_mass_fraction(ranked, 0.8), 2u);
  EXPECT_EQ(count_for_mass_fraction(ranked, 1.0), 5u);
  EXPECT_EQ(count_for_mass_fraction({}, 0.5), 0u);
}

}  // namespace
}  // namespace wcs
