#include "src/core/partitioned_cache.h"

#include <gtest/gtest.h>

#include "src/core/policy.h"

namespace wcs {
namespace {

PartitionedCache audio_split(std::uint64_t total, double fraction) {
  return PartitionedCache::audio_split(total, fraction, [] { return make_size(); });
}

TEST(Partitioned, RoutesByMediaClass) {
  PartitionedCache cache = audio_split(1000, 0.5);
  cache.access(1, 1, 100, FileType::kAudio);
  cache.access(2, 2, 100, FileType::kText);
  EXPECT_EQ(cache.partition(0).entry_count(), 1u);
  EXPECT_EQ(cache.partition(1).entry_count(), 1u);
  EXPECT_EQ(cache.partition_of(FileType::kAudio), 0u);
  EXPECT_EQ(cache.partition_of(FileType::kGraphics), 1u);
  EXPECT_EQ(cache.partition_name(0), "audio");
}

TEST(Partitioned, CapacitySplitMatchesFraction) {
  PartitionedCache cache = audio_split(1000, 0.25);
  EXPECT_EQ(cache.partition(0).capacity_bytes(), 250u);
  EXPECT_EQ(cache.partition(1).capacity_bytes(), 750u);
}

TEST(Partitioned, AudioCannotDisplaceNonAudio) {
  PartitionedCache cache = audio_split(1000, 0.5);
  cache.access(1, 1, 400, FileType::kText);
  // A burst of audio fills its own partition only.
  for (std::uint32_t i = 10; i < 20; ++i) cache.access(2, i, 450, FileType::kAudio);
  EXPECT_TRUE(cache.partition(1).contains(1));
  EXPECT_LE(cache.partition(0).used_bytes(), 500u);
}

TEST(Partitioned, HitsCountedPerPartition) {
  PartitionedCache cache = audio_split(1000, 0.5);
  cache.access(1, 1, 100, FileType::kAudio);
  cache.access(2, 1, 100, FileType::kAudio);
  EXPECT_EQ(cache.partition(0).stats().hits, 1u);
  EXPECT_EQ(cache.partition(1).stats().hits, 0u);
}

TEST(Partitioned, CombinedStatsSum) {
  PartitionedCache cache = audio_split(1000, 0.5);
  cache.access(1, 1, 100, FileType::kAudio);
  cache.access(2, 2, 100, FileType::kText);
  cache.access(3, 1, 100, FileType::kAudio);
  const CacheStats total = cache.combined_stats();
  EXPECT_EQ(total.requests, 3u);
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.requested_bytes, 300u);
}

TEST(Partitioned, CustomPartitionsAndClassifier) {
  std::vector<PartitionedCache::PartitionSpec> specs;
  specs.push_back({"media", 600, [] { return make_lru(); }});
  specs.push_back({"small", 400, [] { return make_lru(); }});
  PartitionedCache cache{std::move(specs), [](FileType type) -> std::size_t {
                           return type == FileType::kAudio || type == FileType::kVideo ? 0 : 1;
                         }};
  cache.access(1, 1, 10, FileType::kVideo);
  cache.access(2, 2, 10, FileType::kCgi);
  EXPECT_EQ(cache.partition(0).entry_count(), 1u);
  EXPECT_EQ(cache.partition(1).entry_count(), 1u);
}

TEST(Partitioned, RejectsBadConstruction) {
  EXPECT_THROW(PartitionedCache({}, [](FileType) -> std::size_t { return 0; }),
               std::invalid_argument);
  std::vector<PartitionedCache::PartitionSpec> specs;
  specs.push_back({"only", 100, [] { return make_lru(); }});
  EXPECT_THROW(PartitionedCache(std::move(specs),
                                [](FileType) -> std::size_t { return 5; }),
               std::invalid_argument);
  EXPECT_THROW(audio_split(1000, 0.0), std::invalid_argument);
  EXPECT_THROW(audio_split(1000, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace wcs
