#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/trace/trace_stats.h"
#include "src/util/stats.h"
#include "src/workload/report.h"

namespace wcs {
namespace {

// Scaled-down presets keep these tests fast; ratios and shapes survive
// scaling by construction.
GeneratedWorkload generate_scaled(const std::string& name, double scale = 0.1) {
  return WorkloadGenerator{WorkloadSpec::preset(name).scaled(scale)}.generate();
}

TEST(Workload, DeterministicForSeed) {
  const auto a = generate_scaled("BL", 0.05);
  const auto b = generate_scaled("BL", 0.05);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace.requests()[i].time, b.trace.requests()[i].time);
    EXPECT_EQ(a.trace.requests()[i].url, b.trace.requests()[i].url);
    EXPECT_EQ(a.trace.requests()[i].size, b.trace.requests()[i].size);
  }
}

TEST(Workload, SeedChangesTrace) {
  WorkloadSpec spec = WorkloadSpec::preset("BL").scaled(0.05);
  const auto a = WorkloadGenerator{spec}.generate();
  spec.seed ^= 0xdeadbeef;
  const auto b = WorkloadGenerator{spec}.generate();
  EXPECT_NE(a.trace.total_bytes(), b.trace.total_bytes());
}

TEST(Workload, RequestsAreTimeOrderedAndInRange) {
  const auto generated = generate_scaled("BL");
  SimTime previous = 0;
  for (const Request& request : generated.trace.requests()) {
    EXPECT_GE(request.time, previous);
    previous = request.time;
    EXPECT_GE(request.size, 1u);
  }
  EXPECT_LE(generated.trace.day_count(), generated.spec.days);
}

TEST(Workload, CalibrationWithinTolerance) {
  for (const char* name : {"BL", "BR"}) {
    const auto generated = generate_scaled(name, 0.2);
    const WorkloadReport report = make_report(generated.spec, generated.trace);
    EXPECT_LT(report.worst_relative_error(), 0.25)
        << name << ": requests " << report.requests_actual << "/" << report.requests_target
        << ", bytes " << report.bytes_actual << "/" << report.bytes_target << ", unique "
        << report.unique_bytes_actual << "/" << report.unique_bytes_target;
  }
}

TEST(Workload, TypeMixMatchesTable4) {
  const auto generated = generate_scaled("BL", 0.2);
  const auto dist = file_type_distribution(generated.trace);
  for (const FileType type : kAllFileTypes) {
    const auto i = static_cast<std::size_t>(type);
    EXPECT_NEAR(dist.ref_fraction(type), generated.spec.ref_mix[i], 0.02)
        << to_string(type);
  }
}

TEST(Workload, ValidatorSawNoise) {
  const auto generated = generate_scaled("BL");
  EXPECT_GT(generated.validation.dropped_status, 0u);
  EXPECT_GT(generated.validation.dropped_method, 0u);
  EXPECT_GT(generated.validation.dropped_zero_size_unknown, 0u);
  EXPECT_GT(generated.validation.size_changes, 0u);
  EXPECT_EQ(generated.validation.kept, generated.trace.size());
}

TEST(Workload, RawLogRoundTripsThroughValidation) {
  WorkloadSpec spec = WorkloadSpec::preset("BL").scaled(0.02);
  auto raw = WorkloadGenerator{spec}.generate_raw();
  const auto validated = validate(raw);
  const auto direct = WorkloadGenerator{spec}.generate();
  EXPECT_EQ(validated.trace.size(), direct.trace.size());
  EXPECT_EQ(validated.trace.total_bytes(), direct.trace.total_bytes());
}

TEST(Workload, ClassroomMeetsFourDaysPerWeek) {
  const auto generated = generate_scaled("C", 0.25);
  std::array<std::uint64_t, 7> by_weekday{};
  for (const Request& request : generated.trace.requests()) {
    by_weekday[static_cast<std::size_t>(day_of(request.time) % 7)] += 1;
  }
  EXPECT_GT(by_weekday[0], 0u);
  EXPECT_GT(by_weekday[3], 0u);
  EXPECT_EQ(by_weekday[4], 0u);
  EXPECT_EQ(by_weekday[5], 0u);
  EXPECT_EQ(by_weekday[6], 0u);
}

TEST(Workload, BackboneRemoteIsHighlyConcentrated) {
  // BR: tiny unique footprint relative to request volume (one popular
  // audio site), so re-reference rate is extreme.
  const auto generated = generate_scaled("BR", 0.2);
  EXPECT_LT(static_cast<double>(generated.trace.url_count()),
            0.1 * static_cast<double>(generated.trace.size()));
}

TEST(Workload, ServerPopularityIsZipfLike) {
  const auto generated = generate_scaled("BL", 0.25);
  const auto ranked = requests_per_server_ranked(generated.trace);
  EXPECT_GT(ranked.size(), 100u);
  const double exponent = zipf_exponent_estimate(ranked);
  EXPECT_GT(exponent, 0.5);
  EXPECT_LT(exponent, 2.0);
}

TEST(Workload, MostRequestsGoToSmallDocuments) {
  // Fig 13's shape: within the dominant types, the median request is far
  // smaller than the mean request.
  const auto generated = generate_scaled("BL", 0.2);
  std::vector<double> sizes;
  sizes.reserve(generated.trace.size());
  double sum = 0.0;
  for (const Request& request : generated.trace.requests()) {
    sizes.push_back(static_cast<double>(request.size));
    sum += static_cast<double>(request.size);
  }
  const double mean = sum / static_cast<double>(sizes.size());
  EXPECT_LT(percentile(sizes, 50.0), mean * 0.5);
}

TEST(Workload, ZipfCoverageMonotoneInPopulation) {
  const double a = WorkloadGenerator::zipf_coverage(100, 0.8, 1000);
  const double b = WorkloadGenerator::zipf_coverage(1000, 0.8, 1000);
  EXPECT_LT(a, b);
  EXPECT_LE(a, 100.0);
  EXPECT_LE(b, 1000.0);
}

TEST(Workload, SolvePopulationHitsTarget) {
  const std::uint64_t population = WorkloadGenerator::solve_population(500.0, 0.8, 2000.0);
  const double coverage = WorkloadGenerator::zipf_coverage(population, 0.8, 2000.0);
  EXPECT_NEAR(coverage, 500.0, 25.0);
}

TEST(Workload, SolvePopulationDegenerateInputs) {
  EXPECT_EQ(WorkloadGenerator::solve_population(0.5, 0.8, 100.0), 1u);
  EXPECT_EQ(WorkloadGenerator::solve_population(100.0, 0.8, 0.5), 1u);
}

TEST(Workload, ScaledPreservesRates) {
  const WorkloadSpec base = WorkloadSpec::preset("BL");
  const WorkloadSpec scaled = base.scaled(0.5);
  EXPECT_NEAR(static_cast<double>(scaled.valid_requests),
              0.5 * static_cast<double>(base.valid_requests), 1.0);
  EXPECT_EQ(scaled.days, base.days);
  EXPECT_THROW(base.scaled(0.0), std::invalid_argument);
}

TEST(Workload, AllPresetsEnumerated) {
  const auto presets = WorkloadSpec::all_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_THROW(WorkloadSpec::preset("X"), std::invalid_argument);
}

TEST(Workload, RejectsMalformedSpecs) {
  WorkloadSpec spec = WorkloadSpec::preset("BL");
  spec.days = 0;
  EXPECT_THROW(WorkloadGenerator{spec}, std::invalid_argument);
  WorkloadSpec no_phases = WorkloadSpec::preset("BL");
  no_phases.phases.clear();
  EXPECT_THROW(WorkloadGenerator{no_phases}, std::invalid_argument);
}

}  // namespace
}  // namespace wcs
