// The policy zoo (src/zoo/): sketch determinism, GDS/GDSF inflation
// semantics, SLRU segmentation, W-TinyLFU windowing, the admission seam,
// the name registry, and the zoo-wide determinism contract — same seed,
// same trace, bit-identical stats on every preset, plain or sharded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/cache.h"
#include "src/core/policy.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"
#include "src/zoo/admission.h"
#include "src/zoo/gds.h"
#include "src/zoo/registry.h"
#include "src/zoo/sketch.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

namespace wcs {
namespace {

const char* const kPresets[] = {"U", "BR", "BL", "C", "G"};

[[nodiscard]] Trace preset_trace(const char* name, double scale = 0.01) {
  return WorkloadGenerator{WorkloadSpec::preset(name).scaled(scale)}.generate().trace;
}

/// A capacity with real eviction pressure: 10% of MaxNeeded (the
/// infinite-cache high-water mark), the study's Experiment-2 sizing.
[[nodiscard]] std::uint64_t pressured_capacity(const Trace& trace) {
  return simulate_infinite(trace).max_used_bytes / 10;
}

void expect_same_stats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.hit_bytes, b.hit_bytes);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.evicted_bytes, b.evicted_bytes);
  EXPECT_EQ(a.size_change_misses, b.size_change_misses);
  EXPECT_EQ(a.rejected_too_large, b.rejected_too_large);
  EXPECT_EQ(a.admission_rejects, b.admission_rejects);
  EXPECT_EQ(a.dead_on_arrival_evictions, b.dead_on_arrival_evictions);
  EXPECT_EQ(a.periodic_sweeps, b.periodic_sweeps);
  EXPECT_EQ(a.max_used_bytes, b.max_used_bytes);
}

// ---- CountMinSketch / Doorkeeper -----------------------------------------

TEST(ZooSketchTest, SameSeedSameEstimatesBitForBit) {
  CountMinSketch a{1024, 42};
  CountMinSketch b{1024, 42};
  for (UrlId url = 0; url < 500; ++url) {
    for (UrlId rep = 0; rep <= url % 5; ++rep) {
      a.add(url);
      b.add(url);
    }
  }
  for (UrlId url = 0; url < 600; ++url) EXPECT_EQ(a.estimate(url), b.estimate(url));
  EXPECT_EQ(a.additions(), b.additions());
}

TEST(ZooSketchTest, CountsSaturateAtCap) {
  CountMinSketch sketch{64, 7};
  for (int i = 0; i < 100; ++i) sketch.add(3);
  EXPECT_EQ(sketch.estimate(3), CountMinSketch::kMaxCount);
  AuditReport report;
  sketch.audit_index(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ZooSketchTest, HalvingAgesCountsAndResetsAdditions) {
  CountMinSketch sketch{64, 7};
  for (int i = 0; i < 8; ++i) sketch.add(11);
  const std::uint32_t before = sketch.estimate(11);
  EXPECT_EQ(before, 8u);
  sketch.halve();
  EXPECT_EQ(sketch.estimate(11), before / 2);
  EXPECT_EQ(sketch.additions(), 0u);
  EXPECT_EQ(sketch.halvings(), 1u);
}

TEST(ZooSketchTest, WidthRoundsUpToPowerOfTwo) {
  CountMinSketch sketch{1000, 1};
  EXPECT_EQ(sketch.width(), 1024u);
  CountMinSketch tiny{3, 1};
  EXPECT_EQ(tiny.width(), 16u);
}

TEST(ZooSketchTest, DoorkeeperRemembersUntilCleared) {
  Doorkeeper door{256, 9};
  EXPECT_FALSE(door.contains(42));
  door.insert(42);
  EXPECT_TRUE(door.contains(42));
  door.clear();
  EXPECT_FALSE(door.contains(42));
}

// ---- GreedyDual-Size / GDSF ----------------------------------------------

TEST(ZooGdsTest, EvictsTheLargestOfEquallyColdDocuments) {
  // H = L + 2^16 / size: the big document carries the smallest value.
  CacheConfig config;
  config.capacity_bytes = 10'000;
  Cache cache{config, make_gds()};
  (void)cache.access(1, /*url=*/1, 6'000);
  (void)cache.access(2, /*url=*/2, 3'000);
  (void)cache.access(3, /*url=*/3, 3'000);  // forces one eviction
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooGdsTest, InflationRisesOnlyThroughEvictions) {
  auto policy = std::make_unique<GreedyDualPolicy>(GreedyDualPolicy::Mode::kGds);
  const GreedyDualPolicy* gds = policy.get();
  CacheConfig config;
  config.capacity_bytes = 8'000;
  Cache cache{config, std::move(policy)};
  (void)cache.access(1, 1, 4'000);
  (void)cache.access(2, 2, 4'000);
  EXPECT_EQ(gds->inflation(), 0u);
  (void)cache.access(3, 3, 4'000);
  EXPECT_GT(gds->inflation(), 0u);  // L rose to the first victim's H
  std::uint64_t last = gds->inflation();
  for (UrlId url = 4; url < 12; ++url) {
    (void)cache.access(url, url, 4'000);
    EXPECT_GE(gds->inflation(), last);
    last = gds->inflation();
  }
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooGdsfTest, FrequencyShieldsAPopularLargeDocument) {
  // Under GDS the 6 KB document would be the first victim; under GDSF its
  // reference count lifts H = L + nref * 2^16 / size above the cold 3 KB one.
  CacheConfig config;
  config.capacity_bytes = 10'000;
  Cache cache{config, make_gdsf()};
  (void)cache.access(1, 1, 6'000);
  for (SimTime t = 2; t < 6; ++t) EXPECT_TRUE(cache.access(t, 1, 6'000).hit);
  (void)cache.access(6, 2, 3'000);
  (void)cache.access(7, 3, 3'000);  // eviction: the cold small doc loses
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooGdsTest, RankTupleExposesTheHeapKey) {
  CacheConfig config;
  config.capacity_bytes = 10'000;
  Cache cache{config, make_gdsf()};
  (void)cache.access(1, 1, 2'000);
  const auto rank = cache.policy().rank_of(1);
  ASSERT_TRUE(rank.has_value());
  EXPECT_EQ(rank->count, 1);
  EXPECT_EQ(rank->ranks[0], static_cast<std::int64_t>((1ULL << 16) / 2'000));
  EXPECT_FALSE(cache.policy().rank_of(999).has_value());
}

// ---- Segmented LRU --------------------------------------------------------

TEST(ZooSlruTest, RejectsDegeneratePermille) {
  EXPECT_THROW(SlruPolicy(0, 1), std::invalid_argument);
  EXPECT_THROW(SlruPolicy(1000, 1), std::invalid_argument);
}

TEST(ZooSlruTest, SecondReferenceSheltersADocument) {
  auto policy = std::make_unique<SlruPolicy>(800, 1);
  const SlruPolicy* slru = policy.get();
  CacheConfig config;
  config.capacity_bytes = 9'000;
  Cache cache{config, std::move(policy)};
  (void)cache.access(1, 1, 3'000);
  (void)cache.access(2, 2, 3'000);
  EXPECT_TRUE(cache.access(3, 2, 3'000).hit);  // url 2 promotes to protected
  EXPECT_EQ(slru->protected_count(), 1u);
  EXPECT_EQ(slru->probation_count(), 1u);
  // Eviction drains probation first: the never-re-referenced url 1 leaves
  // even though it is more recent than nothing — url 2 is sheltered.
  (void)cache.access(4, 3, 6'000);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooSlruTest, ProtectedOverflowDemotesItsLruEnd) {
  auto policy = std::make_unique<SlruPolicy>(500, 1);  // protected cap = 50%
  const SlruPolicy* slru = policy.get();
  CacheConfig config;
  config.capacity_bytes = 12'000;
  Cache cache{config, std::move(policy)};
  for (UrlId url = 1; url <= 4; ++url) (void)cache.access(url, url, 3'000);
  for (UrlId url = 1; url <= 3; ++url) (void)cache.access(10 + url, url, 3'000);  // promote 3
  // Cap is 6'000 bytes = two documents; the first-promoted url 1 was demoted.
  EXPECT_LE(slru->protected_bytes(), slru->protected_cap());
  EXPECT_EQ(slru->protected_count(), 2u);
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

// ---- W-TinyLFU ------------------------------------------------------------

TEST(ZooTinyLfuTest, RejectsInvalidConfigs) {
  TinyLfuConfig zero_window;
  zero_window.window_permille = 0;
  EXPECT_THROW(TinyLfuPolicy{zero_window}, std::invalid_argument);
  TinyLfuConfig outside_bounds;
  outside_bounds.window_permille = 900;  // > max_window_permille (800)
  EXPECT_THROW(TinyLfuPolicy{outside_bounds}, std::invalid_argument);
}

TEST(ZooTinyLfuTest, WindowOverflowDrainsIntoMainWhileRoomRemains) {
  auto policy = std::make_unique<TinyLfuPolicy>();
  const TinyLfuPolicy* lfu = policy.get();
  CacheConfig config;
  config.capacity_bytes = 100'000;  // window cap = 1% = 1'000 bytes
  Cache cache{config, std::move(policy)};
  for (UrlId url = 1; url <= 10; ++url) (void)cache.access(url, url, 2'000);
  // Every document is bigger than the window cap, and main has room: the
  // overflow migrated, so the window never holds more than one document.
  EXPECT_LE(lfu->window_bytes(), 2'000u);
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooTinyLfuTest, DuelsDecideEvictionsOnceMainIsFull) {
  auto policy = std::make_unique<TinyLfuPolicy>();
  const TinyLfuPolicy* lfu = policy.get();
  CacheConfig config;
  config.capacity_bytes = 20'000;
  Cache cache{config, std::move(policy)};
  SimTime now = 1;
  for (UrlId url = 1; url <= 40; ++url) (void)cache.access(now++, url, 2'000);
  EXPECT_GT(lfu->duels_won() + lfu->duels_lost(), 0u);
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooTinyLfuTest, MaintenanceHalvesOnTheSampleSchedule) {
  TinyLfuConfig config;
  config.sample_multiplier = 1;   // halve every ~expected-entry additions
  config.assumed_doc_bytes = 64;  // capacity 65'536 -> 1024 expected entries
  auto policy = std::make_unique<TinyLfuPolicy>(config);
  const TinyLfuPolicy* lfu = policy.get();
  CacheConfig cache_config;
  cache_config.capacity_bytes = 65'536;
  Cache cache{cache_config, std::move(policy)};
  SimTime now = 1;
  // Repeated references pass the doorkeeper and feed sketch additions.
  for (int round = 0; round < 40; ++round) {
    for (UrlId url = 1; url <= 64; ++url) (void)cache.access(now++, url, 512);
  }
  EXPECT_GT(lfu->sketch().halvings(), 0u);
  EXPECT_GE(lfu->window_permille(), 10u);
  EXPECT_LE(lfu->window_permille(), 800u);
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooTinyLfuTest, AdaptiveOffFreezesTheWindow) {
  TinyLfuConfig config;
  config.adaptive = false;
  config.sample_multiplier = 1;
  config.assumed_doc_bytes = 64;
  auto policy = std::make_unique<TinyLfuPolicy>(config);
  const TinyLfuPolicy* lfu = policy.get();
  CacheConfig cache_config;
  cache_config.capacity_bytes = 65'536;
  Cache cache{cache_config, std::move(policy)};
  SimTime now = 1;
  for (int round = 0; round < 40; ++round) {
    for (UrlId url = 1; url <= 64; ++url) (void)cache.access(now++, url, 512);
  }
  EXPECT_GT(lfu->sketch().halvings(), 0u);  // aging still runs
  EXPECT_EQ(lfu->window_permille(), TinyLfuConfig{}.window_permille);  // climb frozen
}

// ---- Admission policies ---------------------------------------------------

TEST(ZooAdmissionTest, SizeThresholdVetoesWithoutEvicting) {
  CacheConfig config;
  config.capacity_bytes = 10'000;
  config.admission = [] { return std::make_unique<SizeThresholdAdmission>(1'000); };
  Cache cache{config, make_lru()};
  (void)cache.access(1, 1, 500);
  const AccessResult rejected = cache.access(2, 2, 5'000);
  EXPECT_FALSE(rejected.inserted);
  EXPECT_EQ(rejected.evictions, 0u);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_TRUE(cache.audit().ok()) << cache.audit().to_string();
}

TEST(ZooAdmissionTest, SizeThresholdDerivesFromCapacityAtAttach) {
  SizeThresholdAdmission admission;  // 0 = derive
  admission.attach(64'000);
  EXPECT_EQ(admission.max_bytes(), 1'000u);
  SizeThresholdAdmission infinite;
  infinite.attach(0);
  EXPECT_TRUE(infinite.should_admit(1, 1, ~0ULL));
}

TEST(ZooAdmissionTest, DoorkeeperAdmitsOnlyTheSecondRequest) {
  CacheConfig config;
  config.capacity_bytes = 10'000;
  config.admission = [] { return make_doorkeeper_admission(1); };
  Cache cache{config, make_lru()};
  EXPECT_FALSE(cache.access(1, 7, 1'000).inserted);  // first sighting: veto
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_TRUE(cache.access(2, 7, 1'000).inserted);  // second: admitted
  EXPECT_TRUE(cache.contains(7));
}

TEST(ZooAdmissionTest, DeadOnArrivalTrackerVetoesAfterStrikes) {
  DeadOnArrivalAdmission doa{/*strike_limit=*/2, /*max_tracked=*/100};
  CacheEntry dead;
  dead.url = 5;
  dead.nref = 1;  // cached, never re-referenced
  EXPECT_TRUE(doa.should_admit(1, 5, 100));
  doa.on_remove(dead);
  EXPECT_TRUE(doa.should_admit(2, 5, 100));  // one strike: still admitted
  doa.on_remove(dead);
  EXPECT_FALSE(doa.should_admit(3, 5, 100));  // two strikes: vetoed
  // A hit proves the document out; the record clears.
  CacheEntry alive = dead;
  alive.nref = 3;
  doa.on_hit(alive);
  EXPECT_TRUE(doa.should_admit(4, 5, 100));
  // Removals with nref > 1 clear rather than strike.
  doa.on_remove(dead);
  doa.on_remove(alive);
  EXPECT_TRUE(doa.should_admit(5, 5, 100));
  AuditReport report;
  doa.audit_index(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ZooAdmissionTest, AdmissionByNameResolvesEveryFilter) {
  for (const char* name : {"always", "size-threshold", "doorkeeper", "doa"}) {
    const auto admission = make_admission_by_name(name);
    ASSERT_NE(admission, nullptr) << name;
    EXPECT_EQ(admission->name(), name);
  }
  EXPECT_EQ(make_admission_by_name("nope"), nullptr);
}

TEST(ZooAdmissionTest, DoaFilterReducesDeadOnArrivalChurn) {
  const Trace trace = preset_trace("BR", 0.02);
  const std::uint64_t capacity = pressured_capacity(trace);
  const SimResult bare = simulate(trace, capacity, [] { return make_size(); });
  const SimResult filtered =
      simulate(trace, capacity, [] { return make_size(); }, {}, {}, nullptr,
               [] { return make_doa_admission(); });
  EXPECT_GT(bare.stats.dead_on_arrival_evictions, 0u);
  EXPECT_LT(filtered.stats.dead_on_arrival_evictions,
            bare.stats.dead_on_arrival_evictions);
  EXPECT_GT(filtered.stats.admission_rejects, 0u);
}

// ---- Name registry --------------------------------------------------------

TEST(ZooRegistryTest, EveryBuiltinAliasResolvesByName) {
  // tools/lint.py's policy-name-coverage rule pins every name
  // make_policy_by_name understands to at least one test; this is that
  // test for the built-ins and their aliases.
  const char* const aliases[] = {
      "fifo", "etime", "lru", "atime", "lfu", "nref", "size", "log2size",
      "day", "day(atime)", "random", "hyper-g", "hyperg", "lru-min",
      "lrumin", "pitkow-recker", "pitkow/recker", "pr",
  };
  for (const char* alias : aliases) {
    const auto policy = make_policy_by_name(alias);
    ASSERT_NE(policy, nullptr) << alias;
    EXPECT_FALSE(policy->name().empty()) << alias;
  }
}

TEST(ZooRegistryTest, RegisteredNamesResolveThroughMakePolicyByName) {
  zoo::register_zoo_policies();
  zoo::register_zoo_policies();  // idempotent
  const auto names = registered_policy_names();
  for (const char* name : {"adaptive", "gds", "gdsf", "slru", "tinylfu", "w-tinylfu"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
    const auto policy = make_policy_by_name(name);
    ASSERT_NE(policy, nullptr) << name;
  }
  EXPECT_EQ(make_policy_by_name("GDSF")->name(), "gdsf");  // case-insensitive
  EXPECT_EQ(make_policy_by_name("tinylfu")->name(), "w-tinylfu");
  // Built-ins are untouched and still win.
  EXPECT_NE(make_policy_by_name("size"), nullptr);
  EXPECT_EQ(make_policy_by_name("no-such-policy"), nullptr);
}

// ---- Determinism contract -------------------------------------------------

TEST(ZooDeterminismTest, SameSeedBitIdenticalOnAllPresets) {
  struct Entry {
    const char* name;
    PolicyFactory factory;
  };
  const Entry entries[] = {
      {"gdsf", [] { return make_gdsf(7); }},
      {"slru", [] { return make_slru(7); }},
      {"w-tinylfu", [] { return make_tinylfu(7); }},
      {"gds", [] { return make_gds(7); }},
  };
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace trace = preset_trace(preset);
    const std::uint64_t capacity = pressured_capacity(trace);
    for (const Entry& entry : entries) {
      SCOPED_TRACE(entry.name);
      const SimResult a = simulate(trace, capacity, entry.factory);
      const SimResult b = simulate(trace, capacity, entry.factory);
      expect_same_stats(a.stats, b.stats);
      EXPECT_EQ(a.daily.overall_hr(), b.daily.overall_hr());
      EXPECT_EQ(a.daily.overall_whr(), b.daily.overall_whr());
    }
  }
}

TEST(ZooDeterminismTest, SingleShardBitIdenticalToPlainCache) {
  struct Entry {
    const char* name;
    PolicyFactory factory;
  };
  const Entry entries[] = {
      {"gdsf", [] { return make_gdsf(); }},
      {"slru", [] { return make_slru(); }},
      {"w-tinylfu", [] { return make_tinylfu(); }},
  };
  const Trace trace = preset_trace("BR", 0.02);
  const std::uint64_t capacity = pressured_capacity(trace);
  for (const Entry& entry : entries) {
    SCOPED_TRACE(entry.name);
    const SimResult flat = simulate(trace, capacity, entry.factory);
    const SimResult sharded =
        simulate_sharded(trace, capacity, entry.factory, /*shards=*/1);
    expect_same_stats(flat.stats, sharded.stats);
  }
}

TEST(ZooDeterminismTest, AuditsStayCleanUnderEvictionPressure) {
  struct Entry {
    const char* name;
    PolicyFactory factory;
  };
  const Entry entries[] = {
      {"gds", [] { return make_gds(); }},
      {"gdsf", [] { return make_gdsf(); }},
      {"slru", [] { return make_slru(); }},
      {"w-tinylfu", [] { return make_tinylfu(); }},
  };
  const Trace trace = preset_trace("BR", 0.02);
  const std::uint64_t capacity = pressured_capacity(trace);
  for (const Entry& entry : entries) {
    SCOPED_TRACE(entry.name);
    SimAudit audit;
    audit.interval = 500;  // full invariant sweep every 500 requests
    EXPECT_NO_THROW((void)simulate(trace, capacity, entry.factory, {}, audit));
  }
}

}  // namespace
}  // namespace wcs
