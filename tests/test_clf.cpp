#include "src/trace/clf.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wcs {
namespace {

constexpr const char* kLine =
    "csgrad.cs.vt.edu - - [17/Sep/1995:08:01:12 +0000] "
    "\"GET http://www.w3.org/pub/WWW/ HTTP/1.0\" 200 2934";

TEST(Clf, ParsesWellFormedLine) {
  const auto parsed = parse_clf_line(kLine);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->client, "csgrad.cs.vt.edu");
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->url, "http://www.w3.org/pub/WWW/");
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->size, 2934u);
  SimTime expected = 0;
  ASSERT_TRUE(parse_clf_timestamp("[17/Sep/1995:08:01:12 +0000]", expected));
  EXPECT_EQ(parsed->time, expected);
}

TEST(Clf, ParsesDashByteCountAsZero) {
  const auto parsed = parse_clf_line(
      "host - - [01/Jan/1995:00:00:01 +0000] \"GET /x.html HTTP/1.0\" 304 -");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size, 0u);
  EXPECT_EQ(parsed->status, 304);
}

TEST(Clf, ParsesMissingVersion) {
  const auto parsed =
      parse_clf_line("h - - [01/Jan/1995:00:00:01 +0000] \"GET /legacy.html\" 200 10");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "/legacy.html");
}

TEST(Clf, ParsesSpacesInsideUrl) {
  const auto parsed = parse_clf_line(
      "h - - [01/Jan/1995:00:00:01 +0000] \"GET /my file.html HTTP/1.0\" 200 10");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->url, "/my file.html");
}

TEST(Clf, RejectsMalformedLines) {
  EXPECT_FALSE(parse_clf_line(""));
  EXPECT_FALSE(parse_clf_line("# comment"));
  EXPECT_FALSE(parse_clf_line("too short"));
  EXPECT_FALSE(parse_clf_line("h - - [bad date] \"GET / HTTP/1.0\" 200 10"));
  EXPECT_FALSE(parse_clf_line("h - - [01/Jan/1995:00:00:01 +0000] \"GET /\" abc 10"));
  EXPECT_FALSE(parse_clf_line("h - - [01/Jan/1995:00:00:01 +0000] \"GET /\" 999999 10"));
  EXPECT_FALSE(parse_clf_line("h - - [01/Jan/1995:00:00:01 +0000] no-quotes 200 10"));
  EXPECT_FALSE(parse_clf_line("h - - [01/Jan/1995:00:00:01 +0000] \"GET / HTTP/1.0\" 200"));
}

TEST(Clf, FormatParseRoundTrip) {
  RawRequest request;
  request.time = 86'400 * 10 + 3600;
  request.client = "client5.u.example";
  request.method = "GET";
  request.url = "http://srv1.u.example/a/b.gif";
  request.status = 200;
  request.size = 1234;
  const auto parsed = parse_clf_line(format_clf_line(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, request.time);
  EXPECT_EQ(parsed->client, request.client);
  EXPECT_EQ(parsed->url, request.url);
  EXPECT_EQ(parsed->status, request.status);
  EXPECT_EQ(parsed->size, request.size);
}

TEST(Clf, ReadStreamCountsMalformed) {
  std::istringstream in{std::string{kLine} + "\ngarbage line\n\n" + kLine + "\n"};
  const auto result = read_clf(in);
  EXPECT_EQ(result.requests.size(), 2u);
  EXPECT_EQ(result.malformed_lines, 1u);
}

TEST(Clf, WriteThenReadStream) {
  std::vector<RawRequest> requests;
  for (int i = 0; i < 5; ++i) {
    RawRequest r;
    r.time = i * 100;
    r.client = "c";
    r.method = "GET";
    r.url = "/doc" + std::to_string(i) + ".html";
    r.status = 200;
    r.size = static_cast<std::uint64_t>(100 + i);
    requests.push_back(r);
  }
  std::ostringstream out;
  write_clf(out, requests);
  std::istringstream in{out.str()};
  const auto result = read_clf(in);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.requests.size(), 5u);
  EXPECT_EQ(result.requests[4].url, "/doc4.html");
  EXPECT_EQ(result.requests[4].size, 104u);
}

}  // namespace
}  // namespace wcs
