#include "src/trace/squid.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/clf.h"
#include "src/trace/validate.h"

namespace wcs {
namespace {

constexpr const char* kLine =
    "796430640.123     87 10.0.0.1 TCP_MISS/200 2934 GET "
    "http://www.w3.org/pub/WWW/ - DIRECT/18.23.0.23 text/html";

TEST(Squid, ParsesNativeLine) {
  const auto parsed = parse_squid_line(kLine);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->client, "10.0.0.1");
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->url, "http://www.w3.org/pub/WWW/");
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->size, 2934u);
  EXPECT_EQ(parsed->time, 796'430'640 - kUnixAtSimEpoch);
}

TEST(Squid, TimestampRebasedToSimEpoch) {
  const auto parsed = parse_squid_line(
      "788918400.000 1 c TCP_HIT/200 10 GET /x.html - NONE/- text/html");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, 0);  // exactly the 1995-01-01 epoch
}

TEST(Squid, ParsesHitAndMissActions) {
  for (const char* action : {"TCP_HIT/200", "TCP_MISS/200", "TCP_REFRESH_HIT/304",
                             "TCP_CLIENT_REFRESH_MISS/200", "UDP_HIT/000"}) {
    const std::string line = std::string{"796430640.1 5 c "} + action +
                             " 10 GET http://h/x - DIRECT/1.2.3.4 -";
    const auto parsed = parse_squid_line(line);
    if (std::string_view{action}.ends_with("/000")) {
      EXPECT_TRUE(parsed.has_value());  // code 0 is parseable; validator drops it
    } else {
      ASSERT_TRUE(parsed.has_value()) << action;
    }
  }
}

TEST(Squid, RejectsMalformed) {
  EXPECT_FALSE(parse_squid_line(""));
  EXPECT_FALSE(parse_squid_line("# comment"));
  EXPECT_FALSE(parse_squid_line("only three fields here"));
  EXPECT_FALSE(parse_squid_line("notatime 5 c TCP_MISS/200 10 GET /x - D/- -"));
  EXPECT_FALSE(parse_squid_line("796430640.1 5 c NOSLASH 10 GET /x - D/- -"));
  EXPECT_FALSE(parse_squid_line("796430640.1 5 c TCP_MISS/999999 10 GET /x - D/- -"));
  EXPECT_FALSE(parse_squid_line("796430640.1 5 c TCP_MISS/200 xx GET /x - D/- -"));
}

TEST(Squid, FormatDetection) {
  EXPECT_EQ(detect_log_format(kLine), "squid");
  EXPECT_EQ(detect_log_format("csgrad.cs.vt.edu - - [17/Sep/1995:08:01:12 +0000] "
                              "\"GET http://x/ HTTP/1.0\" 200 2934"),
            "clf");
  EXPECT_EQ(detect_log_format("garbage"), "unknown");
  EXPECT_EQ(detect_log_format(""), "unknown");
}

TEST(Squid, StreamReadAndValidate) {
  std::ostringstream log;
  for (int i = 0; i < 5; ++i) {
    log << (788'918'400 + i * 60) << ".5 10 client" << i % 2
        << " TCP_MISS/200 " << 1000 + i << " GET http://h/doc" << i % 3
        << ".html - DIRECT/1.1.1.1 text/html\n";
  }
  log << "malformed\n";
  std::istringstream in{log.str()};
  const SquidReadResult result = read_squid(in);
  EXPECT_EQ(result.requests.size(), 5u);
  EXPECT_EQ(result.malformed_lines, 1u);

  // The same validator the CLF path uses applies unchanged.
  const ValidatedTrace validated = validate(result.requests);
  EXPECT_EQ(validated.stats.kept, 5u);
  EXPECT_EQ(validated.trace.url_count(), 3u);
}

TEST(Squid, RoundTripThroughClf) {
  // A squid record can be re-emitted as a CLF line and reparsed.
  const auto parsed = parse_squid_line(kLine);
  ASSERT_TRUE(parsed.has_value());
  const auto reparsed = parse_clf_line(format_clf_line(*parsed));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->url, parsed->url);
  EXPECT_EQ(reparsed->size, parsed->size);
  EXPECT_EQ(reparsed->time, parsed->time);
}

}  // namespace
}  // namespace wcs
