// The policy-zoo study (src/sim/zoo_study.h): every preset yields the full
// policy and admission tables, the adaptive selector is never worse than
// the worst static candidate, the DOA filter cuts dead-on-arrival churn,
// and the study is bit-identical across ParallelRunner job counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/experiments.h"
#include "src/sim/zoo_study.h"
#include "src/workload/generator.h"

namespace wcs {
namespace {

const char* const kPresets[] = {"U", "BR", "BL", "C", "G"};

struct StudyCell {
  Trace trace;
  Experiment1Result infinite;
};

[[nodiscard]] StudyCell study_cell(const char* preset, double scale = 0.01) {
  StudyCell cell;
  cell.trace = WorkloadGenerator{WorkloadSpec::preset(preset).scaled(scale)}.generate().trace;
  cell.infinite = run_experiment1(preset, cell.trace);
  return cell;
}

[[nodiscard]] const ZooPolicyOutcome& outcome_named(const ZooStudyResult& result,
                                                    const std::string& policy) {
  const auto it = std::find_if(result.outcomes.begin(), result.outcomes.end(),
                               [&](const ZooPolicyOutcome& o) { return o.policy == policy; });
  EXPECT_NE(it, result.outcomes.end()) << policy;
  return *it;
}

[[nodiscard]] const ZooAdmissionOutcome& admission_named(const ZooStudyResult& result,
                                                         const std::string& admission) {
  const auto it =
      std::find_if(result.admissions.begin(), result.admissions.end(),
                   [&](const ZooAdmissionOutcome& a) { return a.admission == admission; });
  EXPECT_NE(it, result.admissions.end()) << admission;
  return *it;
}

TEST(ZooStudyTest, EveryPresetYieldsTheFullTables) {
  ParallelRunner runner{2};
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const StudyCell cell = study_cell(preset);
    const ZooStudyResult result =
        run_policy_zoo_study(preset, cell.trace, cell.infinite, 0.10, runner);
    EXPECT_EQ(result.workload, preset);
    EXPECT_DOUBLE_EQ(result.cache_fraction, 0.10);
    EXPECT_GT(result.capacity_bytes, 0u);
    ASSERT_EQ(result.outcomes.size(), 7u);
    const char* const policies[] = {"SIZE",  "LRU",       "GDS",     "GDSF",
                                    "SLRU", "W-TinyLFU", "adaptive"};
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      EXPECT_EQ(result.outcomes[i].policy, policies[i]);
      EXPECT_GT(result.outcomes[i].hr, 0.0);
      EXPECT_LE(result.outcomes[i].hr, 1.0);
      EXPECT_GT(result.outcomes[i].whr, 0.0);
      EXPECT_LE(result.outcomes[i].whr, 1.0);
    }
    ASSERT_EQ(result.admissions.size(), 4u);
    const char* const admissions[] = {"always", "size-threshold", "doorkeeper", "doa"};
    for (std::size_t i = 0; i < result.admissions.size(); ++i) {
      EXPECT_EQ(result.admissions[i].admission, admissions[i]);
      EXPECT_GT(result.admissions[i].insertions, 0u);
    }
    EXPECT_EQ(admission_named(result, "always").admission_rejects, 0u);
  }
}

TEST(ZooStudyTest, AdaptiveSelectorIsNeverWorseThanTheWorstCandidate) {
  // The acceptance bar: shadow selection may not track the single best
  // policy on every workload, but it must never sink below the worst
  // static candidate (its panel is exactly these five).
  ParallelRunner runner{2};
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const StudyCell cell = study_cell(preset);
    const ZooStudyResult result =
        run_policy_zoo_study(preset, cell.trace, cell.infinite, 0.10, runner);
    double worst = 1.0;
    for (const char* policy : {"SIZE", "LRU", "GDSF", "SLRU", "W-TinyLFU"}) {
      worst = std::min(worst, outcome_named(result, policy).hr);
    }
    EXPECT_GE(outcome_named(result, "adaptive").hr, worst - 1e-12);
  }
}

TEST(ZooStudyTest, DoaAdmissionCutsDeadOnArrivalChurn) {
  const StudyCell cell = study_cell("BR", 0.02);
  ParallelRunner runner{2};
  const ZooStudyResult result =
      run_policy_zoo_study("BR", cell.trace, cell.infinite, 0.10, runner);
  const ZooAdmissionOutcome& always = admission_named(result, "always");
  const ZooAdmissionOutcome& doa = admission_named(result, "doa");
  EXPECT_GT(always.dead_on_arrival_evictions, 0u);
  EXPECT_LT(doa.dead_on_arrival_evictions, always.dead_on_arrival_evictions);
  EXPECT_GT(doa.admission_rejects, 0u);
}

TEST(ZooStudyTest, BitIdenticalAcrossRunnerJobCounts) {
  const StudyCell cell = study_cell("BR", 0.02);
  ParallelRunner serial{1};
  ParallelRunner wide{4};
  const ZooStudyResult a = run_policy_zoo_study("BR", cell.trace, cell.infinite, 0.10, serial);
  const ZooStudyResult b = run_policy_zoo_study("BR", cell.trace, cell.infinite, 0.10, wide);
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE(a.outcomes[i].policy);
    EXPECT_EQ(a.outcomes[i].policy, b.outcomes[i].policy);
    EXPECT_EQ(a.outcomes[i].hr, b.outcomes[i].hr);
    EXPECT_EQ(a.outcomes[i].whr, b.outcomes[i].whr);
    EXPECT_EQ(a.outcomes[i].hr_pct_of_infinite, b.outcomes[i].hr_pct_of_infinite);
    EXPECT_EQ(a.outcomes[i].whr_pct_of_infinite, b.outcomes[i].whr_pct_of_infinite);
    EXPECT_EQ(a.outcomes[i].evictions, b.outcomes[i].evictions);
    EXPECT_EQ(a.outcomes[i].dead_on_arrival_evictions, b.outcomes[i].dead_on_arrival_evictions);
  }
  ASSERT_EQ(a.admissions.size(), b.admissions.size());
  for (std::size_t i = 0; i < a.admissions.size(); ++i) {
    SCOPED_TRACE(a.admissions[i].admission);
    EXPECT_EQ(a.admissions[i].admission, b.admissions[i].admission);
    EXPECT_EQ(a.admissions[i].hr, b.admissions[i].hr);
    EXPECT_EQ(a.admissions[i].whr, b.admissions[i].whr);
    EXPECT_EQ(a.admissions[i].insertions, b.admissions[i].insertions);
    EXPECT_EQ(a.admissions[i].admission_rejects, b.admissions[i].admission_rejects);
    EXPECT_EQ(a.admissions[i].dead_on_arrival_evictions,
              b.admissions[i].dead_on_arrival_evictions);
  }
}

}  // namespace
}  // namespace wcs
