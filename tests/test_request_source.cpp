// RequestSource determinism contract (DESIGN.md "Streaming request
// sources"): any source fed/derived from the same record sequence must
// yield the same Request sequence, the same intern tables, and therefore
// bit-identical simulation results. These tests pin that contract for all
// three source kinds — TraceSource, WorkloadStream, LogStreamSource —
// against the materialized paths they mirror, over the full Experiment-2
// grid and the literature policies.
#include "src/trace/request_source.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/keys.h"
#include "src/core/policy.h"
#include "src/sim/simulator.h"
#include "src/trace/clf.h"
#include "src/trace/log_source.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "src/workload/stream.h"

namespace wcs {
namespace {

constexpr const char* kPresets[] = {"U", "G", "C", "BR", "BL"};

bool same_request(const Request& a, const Request& b) {
  return a.time == b.time && a.size == b.size && a.url == b.url && a.server == b.server &&
         a.client == b.client && a.type == b.type && a.latency_ms == b.latency_ms;
}

void expect_tables_identical(const InternTable& a, const InternTable& b) {
  ASSERT_EQ(a.url_count(), b.url_count());
  ASSERT_EQ(a.server_count(), b.server_count());
  ASSERT_EQ(a.client_count(), b.client_count());
  for (std::uint32_t id = 0; id < a.url_count(); ++id) {
    ASSERT_EQ(a.url_name(id), b.url_name(id)) << "url id " << id;
    ASSERT_EQ(a.server_of(id), b.server_of(id)) << "url id " << id;
  }
  for (std::uint32_t id = 0; id < a.server_count(); ++id) {
    ASSERT_EQ(a.server_name(id), b.server_name(id)) << "server id " << id;
  }
  for (std::uint32_t id = 0; id < a.client_count(); ++id) {
    ASSERT_EQ(a.client_name(id), b.client_name(id)) << "client id " << id;
  }
}

void expect_series_identical(const DailySeries& a, const DailySeries& b) {
  ASSERT_EQ(a.day_count(), b.day_count());
  const auto ahr = a.daily_hr();
  const auto bhr = b.daily_hr();
  const auto awhr = a.daily_whr();
  const auto bwhr = b.daily_whr();
  for (std::size_t i = 0; i < ahr.size(); ++i) {
    ASSERT_EQ(ahr[i], bhr[i]) << "hr day " << i;
    ASSERT_EQ(awhr[i], bwhr[i]) << "whr day " << i;
  }
  EXPECT_EQ(a.overall_hr(), b.overall_hr());
  EXPECT_EQ(a.overall_whr(), b.overall_whr());
}

void expect_stats_identical(const CacheStats& a, const CacheStats& b) {
  const auto rows_a = stats_rows(a);
  const auto rows_b = stats_rows(b);
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].value, rows_b[i].value) << rows_a[i].name;
  }
}

void expect_sim_identical(const SimResult& a, const SimResult& b) {
  expect_stats_identical(a.stats, b.stats);
  expect_series_identical(a.daily, b.daily);
  EXPECT_EQ(a.max_used_bytes, b.max_used_bytes);
  EXPECT_EQ(a.footprint.requests, b.footprint.requests);
}

// ---- TraceSource ----------------------------------------------------------

TEST(TraceSource, StreamsTheTraceVerbatim) {
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset("U").scaled(0.02)}.generate();
  TraceSource source{generated.trace};
  Request request;
  std::size_t i = 0;
  while (source.next(request)) {
    ASSERT_LT(i, generated.trace.size());
    EXPECT_TRUE(same_request(request, generated.trace.requests()[i])) << "request " << i;
    ++i;
  }
  EXPECT_EQ(i, generated.trace.size());
  EXPECT_FALSE(source.next(request));  // exhausted stays exhausted
  EXPECT_EQ(&source.names(), &generated.trace.names());
  EXPECT_EQ(source.resident_bytes(), generated.trace.memory_footprint_bytes());
}

// ---- WorkloadStream -------------------------------------------------------

TEST(WorkloadStream, BitIdenticalToGenerateOnAllPresets) {
  // The tentpole property: stream() must emit generate().trace request for
  // request — same times, sizes, ids, types, latencies — and intern in the
  // same first-seen order, for every preset. Any RNG-schedule drift in
  // emit_day shows up here.
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    WorkloadGenerator generator{WorkloadSpec::preset(preset).scaled(0.02)};
    GeneratedWorkload generated = generator.generate();
    WorkloadStream stream = generator.stream();

    Request request;
    std::size_t i = 0;
    while (stream.next(request)) {
      ASSERT_LT(i, generated.trace.size()) << "stream emitted extra requests";
      ASSERT_TRUE(same_request(request, generated.trace.requests()[i])) << "request " << i;
      ++i;
    }
    EXPECT_EQ(i, generated.trace.size());
    expect_tables_identical(stream.names(), generated.trace.names());
    EXPECT_EQ(stream.validation().kept, generated.validation.kept);
    EXPECT_EQ(stream.validation().dropped_status, generated.validation.dropped_status);
    EXPECT_EQ(stream.validation().dropped_method, generated.validation.dropped_method);
  }
}

TEST(WorkloadStream, ExtendedPresetKeepsCorpusBoundedMemory) {
  // The scaling claim: 10x the duration grows the materialized trace ~10x
  // but leaves the streaming footprint at O(corpus). The factor-of-margin
  // assertion is deliberately loose — the point is the asymptote, not the
  // constant.
  const WorkloadSpec base = WorkloadSpec::preset("U").scaled(0.02);
  const WorkloadSpec extended = base.extended(10);
  EXPECT_EQ(extended.days, base.days * 10);
  EXPECT_EQ(extended.valid_requests, base.valid_requests * 10);
  EXPECT_EQ(extended.unique_bytes, base.unique_bytes);  // same corpus

  GeneratedWorkload materialized = WorkloadGenerator{extended}.generate();
  WorkloadStream stream = WorkloadGenerator{extended}.stream();
  Request request;
  std::uint64_t streamed = 0;
  std::uint64_t stream_peak = 0;
  while (stream.next(request)) {
    ++streamed;
    if (streamed % 1024 == 0) stream_peak = std::max(stream_peak, stream.resident_bytes());
  }
  stream_peak = std::max(stream_peak, stream.resident_bytes());
  EXPECT_EQ(streamed, materialized.trace.size());
  EXPECT_LT(stream_peak, materialized.trace.memory_footprint_bytes() / 2)
      << "streaming should stay well below the materialized footprint";
}

// ---- LogStreamSource ------------------------------------------------------

std::string trace_as_clf(const std::vector<RawRequest>& records) {
  std::string text;
  for (const RawRequest& record : records) {
    text += format_clf_line(record);
    text += '\n';
  }
  return text;
}

TEST(LogStreamSource, MatchesMaterializedReadAndValidate) {
  // Same log, two pipelines: read_clf + validate() materializing a Trace,
  // vs LogStreamSource pulling one line at a time. Identical requests,
  // intern tables and validation counters are required.
  std::vector<RawRequest> raw = WorkloadGenerator{WorkloadSpec::preset("G").scaled(0.02)}
                                    .generate_raw();
  const std::string text = trace_as_clf(raw);

  std::istringstream for_reader{text};
  ClfReadResult parsed = read_clf(for_reader);
  ValidatedTrace materialized = validate(parsed.requests);

  std::istringstream for_stream{text};
  LogStreamSource stream{for_stream};
  Request request;
  std::size_t i = 0;
  while (stream.next(request)) {
    ASSERT_LT(i, materialized.trace.size());
    ASSERT_TRUE(same_request(request, materialized.trace.requests()[i])) << "request " << i;
    ++i;
  }
  EXPECT_EQ(i, materialized.trace.size());
  EXPECT_EQ(stream.format(), LogStreamSource::Format::kClf);
  EXPECT_EQ(stream.malformed_lines(), parsed.malformed_lines);
  EXPECT_EQ(stream.validation().kept, materialized.stats.kept);
  EXPECT_EQ(stream.validation().dropped_status, materialized.stats.dropped_status);
  expect_tables_identical(stream.names(), materialized.trace.names());
}

TEST(LogStreamSource, CountsMalformedLinesAndKeepsGoing) {
  const std::string text =
      "host1 - - [01/Jan/1995:00:00:01 -0500] \"GET http://srv/a.html HTTP/1.0\" 200 100\n"
      "this is not a log line\n"
      "host1 - - [01/Jan/1995:00:00:02 -0500] \"GET http://srv/b.html HTTP/1.0\" 200 200\n";
  std::istringstream in{text};
  LogStreamSource stream{in};
  Request request;
  std::size_t kept = 0;
  while (stream.next(request)) ++kept;
  EXPECT_EQ(kept, 2u);
  EXPECT_EQ(stream.malformed_lines(), 1u);
}

TEST(LogStreamSource, OpenThrowsOnMissingFile) {
  EXPECT_THROW((void)LogStreamSource::open("/nonexistent/access.log"), std::runtime_error);
}

// ---- Simulator bit-identity across sources --------------------------------

TEST(StreamingSimulation, Experiment2GridBitIdentical) {
  // The acceptance criterion: the full 36-spec Experiment-2 grid simulated
  // from a WorkloadStream must reproduce the materialized-trace results bit
  // for bit — stats, daily series, max_used_bytes.
  WorkloadGenerator generator{WorkloadSpec::preset("U").scaled(0.02)};
  GeneratedWorkload generated = generator.generate();
  const std::uint64_t capacity = generated.trace.unique_bytes() / 10;

  for (const KeySpec& spec : KeySpec::experiment2_grid()) {
    SCOPED_TRACE(spec.name());
    const SimResult materialized = simulate(
        generated.trace, capacity, [&spec] { return make_sorted_policy(spec); });
    WorkloadStream stream = generator.stream();
    const SimResult streamed =
        simulate(stream, capacity, [&spec] { return make_sorted_policy(spec); });
    expect_sim_identical(materialized, streamed);
  }
}

TEST(StreamingSimulation, LiteraturePoliciesAndVariantsBitIdentical) {
  // Literature policies exercise the stateful paths (Pitkow/Recker's
  // end-of-day sweep, LRU-MIN's threshold halving); the two-level and
  // partitioned simulators exercise the remaining entry points.
  WorkloadGenerator generator{WorkloadSpec::preset("BL").scaled(0.02)};
  GeneratedWorkload generated = generator.generate();
  const std::uint64_t capacity = generated.trace.unique_bytes() / 10;

  const std::vector<PolicyFactory> factories = {
      [] { return make_size(); },          [] { return make_lru_min(); },
      [] { return make_lru(); },           [] { return make_lfu(); },
      [] { return make_fifo(); },          [] { return make_hyper_g(); },
      [] { return make_pitkow_recker(); },
  };
  for (std::size_t p = 0; p < factories.size(); ++p) {
    SCOPED_TRACE("policy " + std::to_string(p));
    const SimResult materialized = simulate(generated.trace, capacity, factories[p]);
    WorkloadStream stream = generator.stream();
    const SimResult streamed = simulate(stream, capacity, factories[p]);
    expect_sim_identical(materialized, streamed);
  }

  {
    const SimResult materialized = simulate_infinite(generated.trace);
    WorkloadStream stream = generator.stream();
    const SimResult streamed = simulate_infinite(stream);
    expect_sim_identical(materialized, streamed);
  }
  {
    const TwoLevelSimResult materialized = simulate_two_level(
        generated.trace, capacity, [] { return make_size(); }, [] { return make_lru(); });
    WorkloadStream stream = generator.stream();
    const TwoLevelSimResult streamed = simulate_two_level(
        stream, capacity, [] { return make_size(); }, [] { return make_lru(); });
    EXPECT_EQ(materialized.stats.requests, streamed.stats.requests);
    EXPECT_EQ(materialized.stats.requested_bytes, streamed.stats.requested_bytes);
    EXPECT_EQ(materialized.stats.l1_hits, streamed.stats.l1_hits);
    EXPECT_EQ(materialized.stats.l1_hit_bytes, streamed.stats.l1_hit_bytes);
    EXPECT_EQ(materialized.stats.l2_hits, streamed.stats.l2_hits);
    EXPECT_EQ(materialized.stats.l2_hit_bytes, streamed.stats.l2_hit_bytes);
    expect_series_identical(materialized.l1_daily, streamed.l1_daily);
    expect_series_identical(materialized.l2_daily, streamed.l2_daily);
  }
  {
    const PartitionedSimResult materialized = simulate_partitioned_audio(
        generated.trace, capacity, 0.5, [] { return make_size(); });
    WorkloadStream stream = generator.stream();
    const PartitionedSimResult streamed =
        simulate_partitioned_audio(stream, capacity, 0.5, [] { return make_size(); });
    expect_stats_identical(materialized.audio_stats, streamed.audio_stats);
    expect_stats_identical(materialized.non_audio_stats, streamed.non_audio_stats);
    expect_series_identical(materialized.audio_daily, streamed.audio_daily);
    expect_series_identical(materialized.non_audio_daily, streamed.non_audio_daily);
  }
}

TEST(StreamingSimulation, FootprintReportsSourceCosts) {
  // At 10x duration the request vector dwarfs the O(corpus) streaming
  // state; at 1x they are comparable, so the memory claim is only asserted
  // on the extended preset (matching the bench's streaming leg).
  WorkloadGenerator generator{WorkloadSpec::preset("U").scaled(0.02).extended(10)};
  GeneratedWorkload generated = generator.generate();

  const SimResult materialized = simulate_infinite(generated.trace);
  EXPECT_EQ(materialized.footprint.requests, materialized.stats.requests);
  EXPECT_EQ(materialized.footprint.source_resident_bytes,
            generated.trace.memory_footprint_bytes());

  WorkloadStream stream = generator.stream();
  const SimResult streamed = simulate_infinite(stream);
  EXPECT_EQ(streamed.footprint.requests, materialized.footprint.requests);
  EXPECT_GT(streamed.footprint.source_resident_bytes, 0u);
  EXPECT_LT(streamed.footprint.source_resident_bytes,
            materialized.footprint.source_resident_bytes / 2);
}

// ---- Latency stamping (the mutable_requests replacement) ------------------

TEST(LatencyStamping, GenerateMatchesLatencyOfRecomputation) {
  // generate() stamps via Trace::stamp_latencies + latency_of; the same
  // function applied again must be a fixed point (deterministic in server
  // name and size, independent of stamping order).
  GeneratedWorkload generated =
      WorkloadGenerator{WorkloadSpec::preset("BR").scaled(0.02)}.generate();
  for (const Request& request : generated.trace.requests()) {
    EXPECT_EQ(request.latency_ms,
              WorkloadGenerator::latency_of(request, generated.trace.names()));
  }
}

}  // namespace
}  // namespace wcs
