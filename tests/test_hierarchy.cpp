// N-level hierarchy (§5 open problem 3, multi-level part).
#include "src/core/hierarchy.h"

#include <gtest/gtest.h>

#include "src/core/policy.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

CacheHierarchy make_three_level(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2) {
  std::vector<CacheHierarchy::LevelSpec> levels;
  const auto add = [&levels](std::uint64_t capacity) {
    CacheHierarchy::LevelSpec spec;
    spec.config.capacity_bytes = capacity;
    spec.policy = make_size();
    levels.push_back(std::move(spec));
  };
  add(l0);
  add(l1);
  add(l2);
  return CacheHierarchy{std::move(levels)};
}

TEST(Hierarchy, MissInstallsAtEveryLevel) {
  CacheHierarchy hierarchy = make_three_level(1000, 10'000, 0);
  EXPECT_EQ(hierarchy.access(1, 1, 100).hit_level, -1);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_TRUE(hierarchy.level(k).contains(1));
}

TEST(Hierarchy, NearestLevelServes) {
  CacheHierarchy hierarchy = make_three_level(1000, 10'000, 0);
  hierarchy.access(1, 1, 100);
  EXPECT_EQ(hierarchy.access(2, 1, 100).hit_level, 0);
  EXPECT_EQ(hierarchy.level_stats()[0].hits, 1u);
}

TEST(Hierarchy, FarLevelHitRefillsNearerLevels) {
  CacheHierarchy hierarchy = make_three_level(150, 10'000, 0);
  hierarchy.access(1, 1, 100);
  hierarchy.access(2, 2, 100);  // evicts 1 from level 0 only
  EXPECT_FALSE(hierarchy.level(0).contains(1));
  EXPECT_TRUE(hierarchy.level(1).contains(1));
  const auto result = hierarchy.access(3, 1, 100);
  EXPECT_EQ(result.hit_level, 1);
  EXPECT_TRUE(hierarchy.level(0).contains(1));  // refilled on the way
}

TEST(Hierarchy, StatsOverAllRequests) {
  CacheHierarchy hierarchy = make_three_level(150, 400, 0);
  hierarchy.access(1, 1, 100);   // miss
  hierarchy.access(2, 1, 100);   // L0 hit
  hierarchy.access(3, 2, 100);   // miss, evicts 1 from L0
  hierarchy.access(4, 1, 100);   // L1 hit
  EXPECT_EQ(hierarchy.requests(), 4u);
  EXPECT_DOUBLE_EQ(hierarchy.hit_rate_of(0), 0.25);
  EXPECT_DOUBLE_EQ(hierarchy.hit_rate_of(1), 0.25);
  EXPECT_DOUBLE_EQ(hierarchy.combined_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(hierarchy.weighted_hit_rate_of(1), 0.25);
}

TEST(Hierarchy, SizeChangeMissesEverywhere) {
  CacheHierarchy hierarchy = make_three_level(1000, 10'000, 0);
  hierarchy.access(1, 1, 100);
  const auto result = hierarchy.access(2, 1, 120);
  EXPECT_EQ(result.hit_level, -1);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(hierarchy.level(k).find(1)->size, 120u);
  }
}

TEST(Hierarchy, SingleLevelDegeneratesToCache) {
  std::vector<CacheHierarchy::LevelSpec> levels;
  CacheHierarchy::LevelSpec spec;
  spec.config.capacity_bytes = 500;
  spec.policy = make_lru();
  levels.push_back(std::move(spec));
  CacheHierarchy hierarchy{std::move(levels)};
  hierarchy.access(1, 1, 100);
  EXPECT_EQ(hierarchy.access(2, 1, 100).hit_level, 0);
  EXPECT_EQ(hierarchy.level_count(), 1u);
}

TEST(Hierarchy, EmptyRejected) {
  EXPECT_THROW(CacheHierarchy{std::vector<CacheHierarchy::LevelSpec>{}},
               std::invalid_argument);
}

TEST(Hierarchy, DeeperHierarchyNeverServesFewerRequestsOverall) {
  // Adding an infinite outer level can only add hits.
  const auto run = [](bool with_outer) {
    std::vector<CacheHierarchy::LevelSpec> levels;
    CacheHierarchy::LevelSpec l0;
    l0.config.capacity_bytes = 2'000;
    l0.policy = make_size();
    levels.push_back(std::move(l0));
    if (with_outer) {
      CacheHierarchy::LevelSpec l1;
      l1.config.capacity_bytes = 0;  // infinite
      l1.policy = make_lru();
      levels.push_back(std::move(l1));
    }
    CacheHierarchy hierarchy{std::move(levels)};
    Rng rng{3};
    for (int i = 0; i < 5'000; ++i) {
      hierarchy.access(i, static_cast<UrlId>(rng.below(50)), 200 + rng.below(800));
    }
    return hierarchy.combined_hit_rate();
  };
  EXPECT_GE(run(true), run(false));
}

}  // namespace
}  // namespace wcs
