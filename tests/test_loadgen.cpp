// Load-generator determinism contract (DESIGN.md §13): merged results are
// bit-identical across thread counts for a fixed shard count, in both
// arrival disciplines, against both targets — the simulator-model
// ShardedCache and a real ProxyCache fleet behind ShardedProxy.
#include "src/sim/loadgen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/obs/recorder.h"
#include "src/sim/chaos.h"
#include "src/sim/experiments.h"
#include "src/sim/simulator.h"

namespace wcs {
namespace {

[[nodiscard]] Trace preset_trace(const char* name, double scale = 0.05) {
  return WorkloadGenerator{WorkloadSpec::preset(name).scaled(scale)}.generate().trace;
}

[[nodiscard]] std::uint64_t total_bytes(const Trace& trace) {
  std::uint64_t total = 0;
  for (const Request& request : trace.requests()) total += request.size;
  return total;
}

void expect_same_result(const LoadGenResult& a, const LoadGenResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.hit_bytes, b.hit_bytes);
  EXPECT_EQ(a.daily.overall_hr(), b.daily.overall_hr());
  EXPECT_EQ(a.daily.overall_whr(), b.daily.overall_whr());
  ASSERT_EQ(a.daily.day_count(), b.daily.day_count());
  for (std::int64_t day = 0; day < a.daily.day_count(); ++day) {
    const DailySeries::DayTotals ta = a.daily.totals_of_day(day);
    const DailySeries::DayTotals tb = b.daily.totals_of_day(day);
    EXPECT_EQ(ta.requests, tb.requests) << "day " << day;
    EXPECT_EQ(ta.hits, tb.hits) << "day " << day;
    EXPECT_EQ(ta.bytes, tb.bytes) << "day " << day;
    EXPECT_EQ(ta.hit_bytes, tb.hit_bytes) << "day " << day;
  }
}

TEST(LoadGenTest, RejectsZeroThreads) {
  ShardedCacheConfig config;
  ShardedCache cache{config, [] { return make_lru(); }};
  ShardedCacheTarget target{cache};
  const Trace trace = preset_trace("U");
  TraceSource source{trace};
  LoadGenConfig load;
  load.threads = 0;
  EXPECT_THROW((void)run_load(target, source, load), std::invalid_argument);
}

TEST(LoadGenTest, EmptySourceYieldsEmptyResult) {
  ShardedCacheConfig config;
  config.shards = 4;
  ShardedCache cache{config, [] { return make_lru(); }};
  ShardedCacheTarget target{cache};
  Trace empty;
  TraceSource source{empty};
  LoadGenConfig load;
  load.threads = 4;
  const LoadGenResult result = run_load(target, source, load);
  EXPECT_EQ(result.requests, 0u);
  EXPECT_EQ(result.hits, 0u);
  EXPECT_EQ(result.concurrency.threads, 4u);
  EXPECT_EQ(result.concurrency.shards, 4u);
}

// threads == 1 through the load generator must agree exactly with the
// single-threaded simulate_sharded replay of the same trace.
TEST(LoadGenTest, SingleThreadMatchesSimulateSharded) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = total_bytes(trace) / 10;
  const std::uint32_t shards = 5;

  const SimResult reference =
      simulate_sharded(trace, capacity, [] { return make_size(); }, shards);

  for (const ArrivalMode mode : {ArrivalMode::kClosedLoop, ArrivalMode::kOpenLoop}) {
    ShardedCacheConfig config;
    config.capacity_bytes = capacity;
    config.shards = shards;
    ShardedCache cache{config, [] { return make_size(); }};
    ShardedCacheTarget target{cache};
    TraceSource source{trace};
    LoadGenConfig load;
    load.threads = 1;
    load.mode = mode;
    const LoadGenResult result = run_load(target, source, load);
    EXPECT_EQ(result.requests, reference.stats.requests);
    EXPECT_EQ(result.hits, reference.stats.hits);
    EXPECT_EQ(result.requested_bytes, reference.stats.requested_bytes);
    EXPECT_EQ(result.hit_bytes, reference.stats.hit_bytes);
    EXPECT_EQ(result.daily.overall_hr(), reference.daily.overall_hr());
    EXPECT_EQ(result.daily.overall_whr(), reference.daily.overall_whr());
  }
}

// The tentpole claim: for a fixed shard count, ANY thread count produces
// the identical merged result, in both arrival disciplines.
TEST(LoadGenTest, ThreadCountInvariantAgainstShardedCache) {
  const Trace trace = preset_trace("U");
  const std::uint64_t capacity = total_bytes(trace) / 10;
  const std::uint32_t shards = 5;

  for (const ArrivalMode mode : {ArrivalMode::kClosedLoop, ArrivalMode::kOpenLoop}) {
    SCOPED_TRACE(mode == ArrivalMode::kClosedLoop ? "closed" : "open");
    std::vector<LoadGenResult> results;
    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      ShardedCacheConfig config;
      config.capacity_bytes = capacity;
      config.shards = shards;
      ShardedCache cache{config, [] { return make_size(); }};
      ShardedCacheTarget target{cache};
      TraceSource source{trace};
      LoadGenConfig load;
      load.threads = threads;
      load.mode = mode;
      load.audit.interval = 1;  // end-of-run target audit
      results.push_back(run_load(target, source, load));
      EXPECT_EQ(results.back().concurrency.threads, threads);
      EXPECT_EQ(results.back().concurrency.shards, shards);
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      expect_same_result(results[0], results[i]);
    }
  }
}

// More workers than shards: the extra closed-loop workers idle, the extra
// open-loop workers contend; the result must not change either way.
TEST(LoadGenTest, MoreThreadsThanShards) {
  const Trace trace = preset_trace("G");
  const std::uint32_t shards = 2;
  std::vector<LoadGenResult> results;
  for (const ArrivalMode mode : {ArrivalMode::kClosedLoop, ArrivalMode::kOpenLoop}) {
    ShardedCacheConfig config;
    config.shards = shards;
    ShardedCache cache{config, [] { return make_lru(); }};
    ShardedCacheTarget target{cache};
    TraceSource source{trace};
    LoadGenConfig load;
    load.threads = 8;
    load.mode = mode;
    results.push_back(run_load(target, source, load));
  }
  expect_same_result(results[0], results[1]);
}

TEST(LoadGenTest, RefusesConcurrentRunAgainstRecordingTarget) {
  ObsRecorder recorder;
  ShardedCacheConfig config;
  config.shards = 2;
  config.obs = &recorder;
  ShardedCache cache{config, [] { return make_lru(); }};
  ShardedCacheTarget target{cache};
  const Trace trace = preset_trace("U");
  TraceSource source{trace};
  LoadGenConfig load;
  load.threads = 2;
  EXPECT_THROW((void)run_load(target, source, load), std::invalid_argument);
}

// ShardedProxy with one shard and one thread is replay_through_proxy with
// different plumbing: same proxy config, same synthetic origin behaviour,
// so the proxy-level counters must agree exactly.
TEST(ShardedProxyTest, SingleShardSingleThreadMatchesReplayThroughProxy) {
  const Trace trace = preset_trace("U");
  ProxyCache::Config proxy_config;
  proxy_config.capacity_bytes = total_bytes(trace) / 10;

  ProxyReplayConfig replay_config;
  replay_config.proxy = proxy_config;
  TraceSource replay_source{trace};
  const ProxyReplayResult reference = replay_through_proxy(replay_source, replay_config);

  ShardedProxy::Config sharded_config;
  sharded_config.shards = 1;
  sharded_config.proxy = proxy_config;
  ShardedProxyTarget target{sharded_config, trace.names()};
  TraceSource source{trace};
  const LoadGenResult result = run_load(target, source, {});

  const ProxyCache::Stats merged = target.proxy().merged_stats();
  EXPECT_EQ(merged.requests, reference.stats.requests);
  EXPECT_EQ(merged.hits, reference.stats.hits);
  EXPECT_EQ(merged.misses, reference.stats.misses);
  EXPECT_EQ(merged.validations, reference.stats.validations);
  EXPECT_EQ(merged.validated_fresh, reference.stats.validated_fresh);
  EXPECT_EQ(merged.hit_bytes, reference.stats.hit_bytes);
  EXPECT_EQ(merged.miss_bytes, reference.stats.miss_bytes);
  EXPECT_EQ(result.requests, reference.stats.requests);
  EXPECT_EQ(result.hits, reference.stats.hits);
  EXPECT_EQ(result.daily.overall_hr(), reference.daily.overall_hr());
}

// Thread-count invariance holds for the real proxy path too: per-shard
// lanes keep origin state and HTTP replay local to the shard, so the fleet
// behaves identically whatever drives it.
TEST(ShardedProxyTest, ThreadCountInvariantAgainstProxyFleet) {
  const Trace trace = preset_trace("BL");
  for (const ArrivalMode mode : {ArrivalMode::kClosedLoop, ArrivalMode::kOpenLoop}) {
    SCOPED_TRACE(mode == ArrivalMode::kClosedLoop ? "closed" : "open");
    std::vector<LoadGenResult> results;
    std::vector<ProxyCache::Stats> merged;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      ShardedProxy::Config config;
      config.shards = 3;
      config.proxy.capacity_bytes = total_bytes(trace) / 10;
      ShardedProxyTarget target{config, trace.names()};
      TraceSource source{trace};
      LoadGenConfig load;
      load.threads = threads;
      load.mode = mode;
      load.audit.interval = 1;
      results.push_back(run_load(target, source, load));
      merged.push_back(target.proxy().merged_stats());
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      expect_same_result(results[0], results[i]);
      EXPECT_EQ(merged[0].requests, merged[i].requests);
      EXPECT_EQ(merged[0].hits, merged[i].hits);
      EXPECT_EQ(merged[0].misses, merged[i].misses);
      EXPECT_EQ(merged[0].validations, merged[i].validations);
      EXPECT_EQ(merged[0].validated_fresh, merged[i].validated_fresh);
      EXPECT_EQ(merged[0].hit_bytes, merged[i].hit_bytes);
      EXPECT_EQ(merged[0].miss_bytes, merged[i].miss_bytes);
      EXPECT_EQ(merged[0].failed_requests, 0u);
    }
  }
}

TEST(ShardedProxyTest, RejectsUnsplittableConfigurations) {
  ShardedProxy::Config config;
  config.shards = 4;
  config.proxy.capacity_bytes = 3;
  EXPECT_THROW((ShardedProxy{config, [](std::uint32_t) -> UpstreamFn {
                  return [](const HttpRequest&, SimTime) { return HttpResponse{}; };
                }}),
               std::invalid_argument);
  config.proxy.capacity_bytes = 1 << 20;
  EXPECT_THROW((ShardedProxy{config, {}}), std::invalid_argument);
}

TEST(ShardedProxyTest, OccupancyStaysWithinPerShardCapacity) {
  const Trace trace = preset_trace("C");
  ShardedProxy::Config config;
  config.shards = 4;
  config.proxy.capacity_bytes = total_bytes(trace) / 10;
  ShardedProxyTarget target{config, trace.names()};
  TraceSource source{trace};
  LoadGenConfig load;
  load.threads = 2;
  const LoadGenResult result = run_load(target, source, load);
  EXPECT_EQ(result.requests, trace.size());
  std::uint64_t requests = 0;
  for (const ShardedProxy::ShardOccupancy& shard : target.proxy().occupancy()) {
    EXPECT_LE(shard.stored_bytes, shard.capacity_bytes);
    requests += shard.requests;
  }
  EXPECT_EQ(requests, trace.size());
  EXPECT_TRUE(target.proxy().audit().ok());
}

}  // namespace
}  // namespace wcs
