#include "src/proxy/origin.h"

#include <gtest/gtest.h>

#include "src/http/date.h"

namespace wcs {
namespace {

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

TEST(Origin, ServesPublishedDocument) {
  OriginServer origin{"www.cs.vt.edu"};
  origin.put("/index.html", "<html>hi</html>", 100);
  const HttpResponse response = origin.handle(get("/index.html"), 500);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "<html>hi</html>");
  EXPECT_EQ(response.headers.get("Last-Modified"), to_http_date(100));
  EXPECT_EQ(response.headers.content_length(), response.body.size());
}

TEST(Origin, AbsoluteUrlForOwnHost) {
  OriginServer origin{"www.cs.vt.edu"};
  origin.put("/a.gif", "GIF89a", 1);
  EXPECT_EQ(origin.handle(get("http://www.cs.vt.edu/a.gif"), 2).status, 200);
  EXPECT_EQ(origin.handle(get("http://WWW.CS.VT.EDU/a.gif"), 2).status, 200);
  EXPECT_EQ(origin.handle(get("http://www.cs.vt.edu:80/a.gif"), 2).status, 200);
  EXPECT_EQ(origin.handle(get("http://other.host/a.gif"), 2).status, 404);
}

TEST(Origin, UnknownPathIs404) {
  OriginServer origin{"h"};
  EXPECT_EQ(origin.handle(get("/nope.html"), 1).status, 404);
}

TEST(Origin, NonGetIs501) {
  OriginServer origin{"h"};
  origin.put("/x", "data", 1);
  HttpRequest request = get("/x");
  request.method = "DELETE";
  EXPECT_EQ(origin.handle(request, 2).status, 501);
}

TEST(Origin, HeadOmitsBody) {
  OriginServer origin{"h"};
  origin.put("/x", "data", 1);
  HttpRequest request = get("/x");
  request.method = "HEAD";
  const HttpResponse response = origin.handle(request, 2);
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
  EXPECT_EQ(response.headers.content_length(), 4u);
}

TEST(Origin, ConditionalGetFreshIs304) {
  OriginServer origin{"h"};
  origin.put("/x", "data", 100);
  HttpRequest request = get("/x");
  request.headers.set("If-Modified-Since", to_http_date(200));
  const HttpResponse response = origin.handle(request, 300);
  EXPECT_EQ(response.status, 304);
  EXPECT_TRUE(response.body.empty());
}

TEST(Origin, ConditionalGetStaleIsFullResponse) {
  OriginServer origin{"h"};
  origin.put("/x", "v1", 100);
  ASSERT_TRUE(origin.edit("/x", "v2 longer", 400));
  HttpRequest request = get("/x");
  request.headers.set("If-Modified-Since", to_http_date(200));
  const HttpResponse response = origin.handle(request, 500);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "v2 longer");
}

TEST(Origin, EditAndRemove) {
  OriginServer origin{"h"};
  EXPECT_FALSE(origin.edit("/missing", "x", 1));
  origin.put("/x", "v1", 1);
  EXPECT_EQ(origin.document_count(), 1u);
  EXPECT_TRUE(origin.remove("/x"));
  EXPECT_FALSE(origin.remove("/x"));
  EXPECT_EQ(origin.handle(get("/x"), 2).status, 404);
}

TEST(Origin, CountsRequests) {
  OriginServer origin{"h"};
  origin.put("/x", "d", 1);
  (void)origin.handle(get("/x"), 2);
  (void)origin.handle(get("/y"), 3);
  EXPECT_EQ(origin.requests_served(), 2u);
}

}  // namespace
}  // namespace wcs
