// Fault-injection + resilience properties (DESIGN.md §9):
//   * determinism — same seed => bit-identical fault schedule and Stats;
//   * compatibility — with FaultPlan disabled (and with resilience
//     disabled) proxy replays are bit-identical across all 5 presets;
//   * stale-if-error never fabricates a body when no copy is cached;
//   * circuit breaker closed -> open -> half-open -> closed recovery;
//   * the acceptance sweep — a 10% transient plan on every preset
//     completes audit-clean with stale serves and availability at or
//     above the no-cache baseline.
#include "src/proxy/faults.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/proxy/origin.h"
#include "src/proxy/proxy.h"
#include "src/proxy/resilience.h"
#include "src/sim/chaos.h"
#include "src/trace/intern.h"
#include "src/util/backoff.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"

namespace wcs {
namespace {

constexpr const char* kPresets[] = {"U", "G", "C", "BR", "BL"};

/// Presets at test scale, generated once per binary run (tests run
/// sequentially in one thread).
const Trace& preset_trace(const std::string& name) {
  static auto* traces = new std::map<std::string, Trace>;
  auto it = traces->find(name);
  if (it == traces->end()) {
    WorkloadGenerator generator{WorkloadSpec::preset(name).scaled(0.02)};
    it = traces->emplace(name, std::move(generator.generate().trace)).first;
  }
  return it->second;
}

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

void expect_replays_identical(const ProxyReplayResult& a, const ProxyReplayResult& b) {
  EXPECT_EQ(a.stats.requests, b.stats.requests);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.misses, b.stats.misses);
  EXPECT_EQ(a.stats.validations, b.stats.validations);
  EXPECT_EQ(a.stats.validated_fresh, b.stats.validated_fresh);
  EXPECT_EQ(a.stats.hit_bytes, b.stats.hit_bytes);
  EXPECT_EQ(a.stats.miss_bytes, b.stats.miss_bytes);
  EXPECT_EQ(a.stats.delta_updates, b.stats.delta_updates);
  EXPECT_EQ(a.stats.upstream_failures, b.stats.upstream_failures);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.breaker_opens, b.stats.breaker_opens);
  EXPECT_EQ(a.stats.stale_served, b.stats.stale_served);
  EXPECT_EQ(a.stats.negative_hits, b.stats.negative_hits);
  EXPECT_EQ(a.stats.failed_requests, b.stats.failed_requests);
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
  EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
  EXPECT_EQ(a.cache_stats.max_used_bytes, b.cache_stats.max_used_bytes);
  EXPECT_EQ(a.availability.served, b.availability.served);
  EXPECT_EQ(a.availability.failed, b.availability.failed);
  EXPECT_EQ(a.daily.overall_hr(), b.daily.overall_hr());
  EXPECT_EQ(a.daily.overall_whr(), b.daily.overall_whr());
}

// ---- backoff --------------------------------------------------------------

TEST(Backoff, DeterministicAndBounded) {
  const BackoffConfig config;  // base 100, max 2000, jitter 0.5
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const std::uint32_t a = backoff_delay_ms(config, 7, 42, attempt);
    const std::uint32_t b = backoff_delay_ms(config, 7, 42, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    // Jitter scales the nominal delay by [0.75, 1.25).
    const double nominal = std::min<double>(100.0 * (1u << (attempt - 1)), 2000.0);
    EXPECT_GE(a, static_cast<std::uint32_t>(nominal * 0.75)) << "attempt " << attempt;
    EXPECT_LT(a, static_cast<std::uint32_t>(nominal * 1.25) + 1) << "attempt " << attempt;
  }
  EXPECT_EQ(backoff_delay_ms(config, 7, 42, 0), 0u);
  // Different seeds / keys decorrelate the jitter somewhere in the range.
  bool any_difference = false;
  for (std::uint64_t key = 0; key < 32; ++key) {
    if (backoff_delay_ms(config, 1, key, 3) != backoff_delay_ms(config, 2, key, 3)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// ---- fault schedule determinism -------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultSpec spec = FaultSpec::transient_mix(0.30, 1234);
  const FaultPlan a{spec};
  const FaultPlan b{spec};
  FaultSpec other = spec;
  other.seed = 999;
  const FaultPlan c{other};

  const char* urls[] = {"http://h1.example/x", "http://h2.example/y", "http://h3.example/z"};
  int differences_vs_c = 0;
  for (const char* url : urls) {
    for (SimTime now = 0; now < 2000; now += 37) {
      for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
        const FaultKind ka = a.decide(url, now, attempt);
        ASSERT_EQ(ka, b.decide(url, now, attempt)) << url << " t=" << now << " a=" << attempt;
        if (ka != c.decide(url, now, attempt)) ++differences_vs_c;
      }
    }
  }
  EXPECT_GT(differences_vs_c, 0) << "a different seed must give a different schedule";
}

TEST(FaultPlan, DisabledIsIdentity) {
  const FaultPlan plan;  // default FaultSpec: all probabilities zero
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.decide("http://h.example/a", 100, 0), FaultKind::kNone);
  int calls = 0;
  UpstreamFn inner = [&calls](const HttpRequest&, SimTime) {
    ++calls;
    HttpResponse response;
    response.body = "ok";
    return response;
  };
  const UpstreamFn wrapped = plan.wrap(inner);
  const HttpResponse response = wrapped(get("http://h.example/a"), 5);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(response.body, "ok");
  EXPECT_FALSE(response.headers.contains("X-Fault"));
}

TEST(FaultPlan, OutagePersistsAcrossAttempts) {
  FaultSpec spec;
  spec.outage = 1.0;  // every (host, window) is down
  const FaultPlan plan{spec};
  for (std::uint32_t attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(plan.decide("http://h.example/a", 100, attempt), FaultKind::kOutage);
  }
}

/// A verbatim replica of the pre-label decision hash, with the salts pinned
/// as literals. EmptyLabelPreservesLegacySchedule replays it against the
/// production decide(): if the chain, its order, or either salt ever
/// changes, that test fails — which is the point, because an unlabelled
/// FaultPlan promises the pre-label schedules bit-for-bit.
FaultKind legacy_decide(const FaultSpec& spec, std::string_view url, SimTime now,
                        std::uint32_t attempt) {
  constexpr std::uint64_t kLegacyOutageSalt = 0x007a6e5a17c0ffeeULL;
  constexpr std::uint64_t kLegacyTransientSalt = 0x7a151e47deadbeefULL;
  if (!spec.enabled()) return FaultKind::kNone;
  const std::uint64_t host = fnv1a64(url_server(url));
  if (spec.outage > 0.0 && spec.outage_window > 0) {
    SimTime window = now / spec.outage_window;
    if (now % spec.outage_window < 0) --window;
    std::uint64_t h = mix64(spec.seed ^ kLegacyOutageSalt);
    h = mix64(h ^ host);
    h = mix64(h ^ static_cast<std::uint64_t>(window));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < spec.outage) return FaultKind::kOutage;
  }
  if (spec.transient_sum() <= 0.0) return FaultKind::kNone;
  std::uint64_t h = mix64(spec.seed ^ kLegacyTransientSalt);
  h = mix64(h ^ host);
  h = mix64(h ^ static_cast<std::uint64_t>(now));
  h = mix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double edge = spec.timeout;
  if (u < edge) return FaultKind::kTimeout;
  edge += spec.server_error;
  if (u < edge) return FaultKind::kServerError;
  edge += spec.reset;
  if (u < edge) return FaultKind::kReset;
  edge += spec.slow;
  if (u < edge) return FaultKind::kSlow;
  edge += spec.truncated;
  if (u < edge) return FaultKind::kTruncated;
  return FaultKind::kNone;
}

TEST(FaultPlan, EmptyLabelPreservesLegacySchedule) {
  const FaultSpec spec = FaultSpec::transient_mix(0.40, 77);
  ASSERT_TRUE(spec.label.empty());
  const FaultPlan plan{spec};
  const char* urls[] = {"http://h1.example/x", "http://h2.example/y", "http://h3.example/z"};
  for (const char* url : urls) {
    for (SimTime now = 0; now < 8000; now += 41) {
      for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
        ASSERT_EQ(plan.decide(url, now, attempt), legacy_decide(spec, url, now, attempt))
            << url << " t=" << now << " a=" << attempt;
      }
    }
  }
}

TEST(FaultPlan, LabelsDecorrelateSchedules) {
  const FaultSpec spec = FaultSpec::transient_mix(0.40, 77);
  const FaultPlan unlabelled{spec};
  const FaultPlan left{spec.with_label("regional[0]")};
  const FaultPlan left_again{spec.with_label("regional[0]")};
  const FaultPlan right{spec.with_label("regional[1]")};

  const char* urls[] = {"http://h1.example/x", "http://h2.example/y"};
  int left_vs_right = 0;
  int left_vs_unlabelled = 0;
  for (const char* url : urls) {
    for (SimTime now = 0; now < 8000; now += 41) {
      for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
        const FaultKind kl = left.decide(url, now, attempt);
        // The label is part of the schedule's identity, not hidden state:
        // two plans with the same (seed, label) agree everywhere.
        ASSERT_EQ(kl, left_again.decide(url, now, attempt));
        if (kl != right.decide(url, now, attempt)) ++left_vs_right;
        if (kl != unlabelled.decide(url, now, attempt)) ++left_vs_unlabelled;
      }
    }
  }
  EXPECT_GT(left_vs_right, 0) << "sibling links must draw independent schedules";
  EXPECT_GT(left_vs_unlabelled, 0) << "a labelled plan must not alias the legacy schedule";
}

TEST(FaultPlan, FailureClassification) {
  HttpResponse ok;
  EXPECT_FALSE(is_upstream_failure(ok));
  HttpResponse not_found = ok;
  not_found.status = 404;
  EXPECT_FALSE(is_upstream_failure(not_found));  // the origin answered
  HttpResponse not_implemented = ok;
  not_implemented.status = 501;
  EXPECT_FALSE(is_upstream_failure(not_implemented));
  for (const int status : {500, 502, 503, 504}) {
    HttpResponse gateway = ok;
    gateway.status = status;
    EXPECT_TRUE(is_upstream_failure(gateway)) << status;
  }
  HttpResponse transport;
  transport.status = kTransportError;
  EXPECT_TRUE(is_upstream_failure(transport));
  HttpResponse truncated;
  truncated.body = "half";
  truncated.headers.set("Content-Length", "8");
  EXPECT_TRUE(is_upstream_failure(truncated));
  truncated.headers.set("Content-Length", "4");
  EXPECT_FALSE(is_upstream_failure(truncated));
}

// ---- resilient upstream ---------------------------------------------------

/// Scripted upstream: fails (503) while `failing` is true, counts calls.
struct ScriptedUpstream {
  bool failing = false;
  int calls = 0;

  UpstreamFn fn() {
    return [this](const HttpRequest&, SimTime) {
      ++calls;
      HttpResponse response;
      if (failing) {
        response.status = 503;
        response.reason = "Service Unavailable";
      } else {
        response.body = "payload";
      }
      return response;
    };
  }
};

TEST(Resilience, RetriesClearTransientFailures) {
  int calls = 0;
  ResilienceConfig config;
  config.retry.max_attempts = 3;
  ResilientUpstream upstream{config, [&calls](const HttpRequest& request, SimTime) {
                               ++calls;
                               HttpResponse response;
                               // Fail until the second retry (attempt 2).
                               const auto attempt = request.headers.get(kAttemptHeader);
                               if (!attempt || *attempt != "2") response.status = 503;
                               return response;
                             }};
  const UpstreamOutcome outcome = upstream.fetch(get("http://h.example/a"), 100);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(calls, 3);
  EXPECT_GT(outcome.latency_ms, 0u);  // backoff delays were charged
}

TEST(Resilience, BreakerOpensHalfOpensAndRecovers) {
  ScriptedUpstream origin;
  origin.failing = true;
  ResilienceConfig config;
  config.retry.max_attempts = 1;  // isolate the breaker from retry effects
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = 30;
  config.breaker.half_open_successes = 2;
  config.negative.ttl = 0;  // isolate from the negative cache
  ResilientUpstream upstream{config, origin.fn()};
  const HttpRequest request = get("http://h.example/a");
  const std::string host = "h.example";

  // Three consecutive failures trip the breaker open.
  SimTime now = 100;
  for (int i = 0; i < 3; ++i) {
    const UpstreamOutcome outcome = upstream.fetch(request, now++);
    EXPECT_TRUE(outcome.failed);
    EXPECT_EQ(outcome.breaker_opened, i == 2);
  }
  EXPECT_EQ(upstream.breaker_state(host, now), ResilientUpstream::BreakerState::kOpen);

  // While open: short-circuit, no upstream call.
  const int calls_before = origin.calls;
  const UpstreamOutcome blocked = upstream.fetch(request, now);
  EXPECT_TRUE(blocked.failed);
  EXPECT_TRUE(blocked.breaker_short_circuit);
  EXPECT_EQ(origin.calls, calls_before);

  // After open_duration the breaker half-opens and probes pass through.
  now += 40;
  origin.failing = false;
  EXPECT_EQ(upstream.breaker_state(host, now), ResilientUpstream::BreakerState::kHalfOpen);
  const UpstreamOutcome probe1 = upstream.fetch(request, now);
  EXPECT_FALSE(probe1.failed);
  EXPECT_EQ(upstream.breaker_state(host, now), ResilientUpstream::BreakerState::kHalfOpen);
  const UpstreamOutcome probe2 = upstream.fetch(request, now + 1);
  EXPECT_FALSE(probe2.failed);
  EXPECT_EQ(upstream.breaker_state(host, now + 1), ResilientUpstream::BreakerState::kClosed);
}

TEST(Resilience, FailedProbeReopensBreaker) {
  ScriptedUpstream origin;
  origin.failing = true;
  ResilienceConfig config;
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration = 10;
  config.negative.ttl = 0;
  ResilientUpstream upstream{config, origin.fn()};
  const HttpRequest request = get("http://h.example/a");

  (void)upstream.fetch(request, 0);
  (void)upstream.fetch(request, 1);  // opens
  const UpstreamOutcome probe = upstream.fetch(request, 20);  // half-open probe fails
  EXPECT_TRUE(probe.failed);
  EXPECT_TRUE(probe.breaker_opened);  // re-open counts as an open transition
  EXPECT_EQ(upstream.breaker_state("h.example", 21), ResilientUpstream::BreakerState::kOpen);
}

TEST(Resilience, NegativeCacheShortCircuits) {
  ScriptedUpstream origin;
  origin.failing = true;
  ResilienceConfig config;
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 100;  // keep the breaker out of the way
  config.negative.ttl = 10;
  ResilientUpstream upstream{config, origin.fn()};
  const HttpRequest request = get("http://h.example/a");

  (void)upstream.fetch(request, 100);
  EXPECT_EQ(origin.calls, 1);
  const UpstreamOutcome cached = upstream.fetch(request, 105);  // within ttl
  EXPECT_TRUE(cached.failed);
  EXPECT_TRUE(cached.negative_hit);
  EXPECT_EQ(origin.calls, 1);  // no upstream call
  origin.failing = false;
  const UpstreamOutcome after = upstream.fetch(request, 111);  // ttl expired
  EXPECT_FALSE(after.failed);
  EXPECT_EQ(origin.calls, 2);
}

TEST(Resilience, TimeoutBudgetYields504Class) {
  FaultSpec spec;
  spec.timeout = 1.0;  // every attempt times out
  const FaultPlan plan{spec};
  ScriptedUpstream origin;
  ResilienceConfig config;
  config.timeout_budget_ms = 1500;  // < 2 * timeout_latency_ms
  ResilientUpstream upstream{config, plan.wrap(origin.fn())};
  const UpstreamOutcome outcome = upstream.fetch(get("http://h.example/a"), 100);
  EXPECT_TRUE(outcome.failed);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_LE(outcome.attempts, 2u);  // budget cut the retry loop short
  EXPECT_EQ(origin.calls, 0);       // the fault fired before the origin
}

// ---- stale-if-error at the proxy ------------------------------------------

TEST(StaleIfError, ServesCachedCopyWithWarning) {
  OriginServer origin{"srv.example"};
  origin.put("/a.html", "document body", 10);
  bool fail_now = false;
  ProxyCache::Config config;
  config.revalidate_after = 100;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     if (fail_now) {
                       HttpResponse response;
                       response.status = kTransportError;
                       response.reason = "Transport Error";
                       response.headers.set("X-Fault", "reset");
                       return response;
                     }
                     return origin.handle(request, now);
                   }};

  const HttpResponse first = proxy.handle(get("http://srv.example/a.html"), 1000);
  ASSERT_EQ(first.status, 200);

  // Past the TTL with the origin unreachable: the stale copy is served.
  fail_now = true;
  const HttpResponse stale = proxy.handle(get("http://srv.example/a.html"), 2000);
  EXPECT_EQ(stale.status, 200);
  EXPECT_EQ(stale.body, "document body");
  EXPECT_EQ(stale.headers.get("X-Cache"), "HIT");
  ASSERT_TRUE(stale.headers.get("Warning").has_value());
  EXPECT_NE(stale.headers.get("Warning")->find("111"), std::string::npos);
  EXPECT_EQ(proxy.stats().stale_served, 1u);
  EXPECT_EQ(proxy.stats().hits, 1u);
  EXPECT_GE(proxy.stats().upstream_failures, 1u);
  EXPECT_EQ(proxy.stats().failed_requests, 0u);

  // The copy stays stale (fetched_at unchanged): once the negative-cache
  // TTL lapses, recovery revalidates upstream again.
  fail_now = false;
  const HttpResponse recovered = proxy.handle(
      get("http://srv.example/a.html"), 2000 + config.resilience.negative.ttl + 1);
  EXPECT_EQ(recovered.status, 200);
  EXPECT_FALSE(recovered.headers.contains("Warning"));
  EXPECT_EQ(proxy.stats().validated_fresh, 1u);
}

TEST(StaleIfError, NeverFabricatesABody) {
  // 100% reset plan, nothing cached: the only honest answer is 502.
  FaultSpec spec;
  spec.reset = 1.0;
  const FaultPlan plan{spec};
  OriginServer origin{"srv.example"};
  origin.put("/a.html", "document body", 10);
  ProxyCache::Config config;
  ProxyCache proxy{config, plan.wrap([&origin](const HttpRequest& request, SimTime now) {
                     return origin.handle(request, now);
                   })};

  const HttpResponse response = proxy.handle(get("http://srv.example/a.html"), 100);
  EXPECT_EQ(response.status, 502);
  EXPECT_TRUE(response.body.empty());
  EXPECT_EQ(proxy.stats().stale_served, 0u);
  EXPECT_EQ(proxy.stats().failed_requests, 1u);
  EXPECT_EQ(proxy.stats().availability(), 0.0);

  // Timeout-class failures surface as 504, still with no body.
  FaultSpec timeout_spec;
  timeout_spec.timeout = 1.0;
  const FaultPlan timeout_plan{timeout_spec};
  ProxyCache timeout_proxy{config,
                           timeout_plan.wrap([&origin](const HttpRequest& request, SimTime now) {
                             return origin.handle(request, now);
                           })};
  const HttpResponse gateway = timeout_proxy.handle(get("http://srv.example/b.html"), 100);
  EXPECT_EQ(gateway.status, 504);
  EXPECT_TRUE(gateway.body.empty());
}

TEST(StaleIfError, DisabledFallsBackToFailure) {
  OriginServer origin{"srv.example"};
  origin.put("/a.html", "document body", 10);
  bool fail_now = false;
  ProxyCache::Config config;
  config.revalidate_after = 100;
  config.resilience.stale_if_error = false;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     if (fail_now) {
                       HttpResponse response;
                       response.status = 503;
                       return response;
                     }
                     return origin.handle(request, now);
                   }};
  (void)proxy.handle(get("http://srv.example/a.html"), 1000);
  fail_now = true;
  const HttpResponse failed = proxy.handle(get("http://srv.example/a.html"), 2000);
  EXPECT_EQ(failed.status, 502);
  EXPECT_EQ(proxy.stats().stale_served, 0u);
  EXPECT_EQ(proxy.stats().failed_requests, 1u);
}

// ---- compatibility: disabled faults are a no-op ---------------------------

TEST(FaultPlan, DisabledZeroBehavioralDiffAllPresets) {
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace& trace = preset_trace(preset);

    ProxyReplayConfig enabled;  // resilience on, faults off
    enabled.proxy.capacity_bytes = 4ULL << 20;
    enabled.check_interval = 2048;
    ProxyReplayConfig disabled = enabled;  // resilience fully off
    disabled.proxy.resilience.enabled = false;

    TraceSource source_a{trace};
    const ProxyReplayResult with_resilience = replay_through_proxy(source_a, enabled);
    TraceSource source_b{trace};
    const ProxyReplayResult without_resilience = replay_through_proxy(source_b, disabled);
    TraceSource source_c{trace};
    const ProxyReplayResult repeat = replay_through_proxy(source_c, enabled);

    // Resilience enabled with no faults == the raw pre-PR-4 path, and the
    // replay itself is deterministic.
    expect_replays_identical(with_resilience, without_resilience);
    expect_replays_identical(with_resilience, repeat);
    EXPECT_EQ(with_resilience.stats.upstream_failures, 0u);
    EXPECT_EQ(with_resilience.stats.retries, 0u);
    EXPECT_EQ(with_resilience.stats.failed_requests, 0u);
    EXPECT_EQ(with_resilience.availability.failed, 0u);
  }
}

// ---- the chaos acceptance sweep -------------------------------------------

TEST(Chaos, TenPercentSweepCompletesOnEveryPreset) {
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace& trace = preset_trace(preset);
    ChaosSweepConfig config;
    config.fault_rates = {0.0, 0.10};
    config.capacity_bytes = 4ULL << 20;
    config.check_interval = 1024;

    const ChaosSweepResult sweep = run_chaos_sweep(preset, trace, config);
    ASSERT_EQ(sweep.cells.size(), 2u);

    const ChaosCell& clean = sweep.cells[0];
    EXPECT_EQ(clean.with_cache.availability.failed, 0u);
    EXPECT_EQ(clean.with_cache.availability.availability(), 1.0);
    EXPECT_EQ(clean.with_cache.stats.stale_served, 0u);

    const ChaosCell& faulty = sweep.cells[1];
    // Faults really happened, stale-if-error really masked some of them...
    EXPECT_GT(faulty.with_cache.stats.upstream_failures, 0u);
    EXPECT_GT(faulty.with_cache.stats.stale_served, 0u);
    EXPECT_LT(faulty.with_cache.availability.availability(), 1.0);
    // ...and the cache is availability infrastructure: it must beat (or
    // match) the same resilience stack with no cache behind it.
    EXPECT_GE(faulty.with_cache.availability.availability(),
              faulty.no_cache.availability.availability());
  }
}

TEST(Chaos, SameSeedBitIdenticalSweep) {
  const Trace& trace = preset_trace("BR");
  ChaosSweepConfig config;
  config.fault_rates = {0.10};
  config.capacity_bytes = 4ULL << 20;
  config.check_interval = 0;  // end-of-run checks only; speed
  const ChaosSweepResult a = run_chaos_sweep("BR", trace, config);
  const ChaosSweepResult b = run_chaos_sweep("BR", trace, config);
  ASSERT_EQ(a.cells.size(), 1u);
  ASSERT_EQ(b.cells.size(), 1u);
  expect_replays_identical(a.cells[0].with_cache, b.cells[0].with_cache);
  expect_replays_identical(a.cells[0].no_cache, b.cells[0].no_cache);
}

TEST(Chaos, SimulatorReportsPerfectAvailability) {
  const Trace& trace = preset_trace("U");
  const SimResult result = simulate_infinite(trace);
  EXPECT_EQ(result.availability.served, trace.size());
  EXPECT_EQ(result.availability.failed, 0u);
  EXPECT_EQ(result.availability.availability(), 1.0);
}

}  // namespace
}  // namespace wcs
