#include "src/core/sorted_policy.h"

#include <gtest/gtest.h>

#include "src/core/cache.h"

namespace wcs {
namespace {

CacheEntry entry(UrlId url, std::uint64_t size, SimTime etime, SimTime atime,
                 std::uint64_t nref, std::uint64_t tag = 0) {
  CacheEntry e;
  e.url = url;
  e.size = size;
  e.etime = etime;
  e.atime = atime;
  e.nref = nref;
  e.random_tag = tag;
  return e;
}

TEST(SortedPolicy, SizePrimaryEvictsLargest) {
  SortedPolicy policy{KeySpec{{Key::kSize}}};
  policy.on_insert(entry(1, 100, 0, 0, 1));
  policy.on_insert(entry(2, 900, 0, 0, 1));
  policy.on_insert(entry(3, 500, 0, 0, 1));
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, AtimePrimaryEvictsLeastRecent) {
  SortedPolicy policy{KeySpec{{Key::kAtime}}};
  policy.on_insert(entry(1, 10, 0, 50, 1));
  policy.on_insert(entry(2, 10, 0, 20, 1));
  policy.on_insert(entry(3, 10, 0, 80, 1));
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, HitReordersIndex) {
  SortedPolicy policy{KeySpec{{Key::kAtime}}};
  policy.on_insert(entry(1, 10, 0, 10, 1));
  policy.on_insert(entry(2, 10, 0, 20, 1));
  CacheEntry touched = entry(1, 10, 0, 99, 2);
  policy.on_hit(touched);
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, RemoveUntracksEntry) {
  SortedPolicy policy{KeySpec{{Key::kSize}}};
  const CacheEntry big = entry(1, 900, 0, 0, 1);
  policy.on_insert(big);
  policy.on_insert(entry(2, 100, 0, 0, 1));
  policy.on_remove(big);
  EXPECT_EQ(policy.tracked(), 1u);
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, EmptyReturnsNullopt) {
  SortedPolicy policy{KeySpec{{Key::kSize}}};
  EXPECT_FALSE(policy.choose_victim({}).has_value());
}

TEST(SortedPolicy, SecondaryKeyBreaksTies) {
  SortedPolicy policy{KeySpec{{Key::kSize, Key::kAtime}}};
  policy.on_insert(entry(1, 500, 0, 30, 1));
  policy.on_insert(entry(2, 500, 0, 10, 1));  // same size, older access
  policy.on_insert(entry(3, 500, 0, 20, 1));
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, TertiaryRandomTagBreaksRemainingTies) {
  SortedPolicy policy{KeySpec{{Key::kSize, Key::kNref}}};
  policy.on_insert(entry(1, 500, 0, 0, 1, /*tag=*/50));
  policy.on_insert(entry(2, 500, 0, 0, 1, /*tag=*/10));
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, NrefPrimaryIsLfu) {
  SortedPolicy policy{KeySpec{{Key::kNref}}};
  policy.on_insert(entry(1, 10, 0, 0, 5));
  policy.on_insert(entry(2, 10, 0, 0, 2));
  policy.on_insert(entry(3, 10, 0, 0, 9));
  EXPECT_EQ(policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, PositionOfReportsSortedIndex) {
  SortedPolicy policy{KeySpec{{Key::kSize}}};
  policy.on_insert(entry(1, 900, 0, 0, 1));
  policy.on_insert(entry(2, 100, 0, 0, 1));
  policy.on_insert(entry(3, 500, 0, 0, 1));
  EXPECT_EQ(policy.position_of(1), 0u);  // largest = head of removal list
  EXPECT_EQ(policy.position_of(3), 1u);
  EXPECT_EQ(policy.position_of(2), 2u);
  EXPECT_FALSE(policy.position_of(99).has_value());
}

TEST(SortedPolicy, HyperGKeyOrder) {
  // Hyper-G: NREF, then ATIME, then SIZE.
  SortedPolicy policy{KeySpec{{Key::kNref, Key::kAtime, Key::kSize}}};
  policy.on_insert(entry(1, 100, 0, 50, 2));
  policy.on_insert(entry(2, 100, 0, 10, 2));  // same nref, older -> victim
  policy.on_insert(entry(3, 100, 0, 5, 7));   // more refs, safe
  EXPECT_EQ(policy.choose_victim({}), 2u);
  // Tie on nref and atime: larger size goes first.
  SortedPolicy tie_policy{KeySpec{{Key::kNref, Key::kAtime, Key::kSize}}};
  tie_policy.on_insert(entry(1, 100, 0, 10, 2));
  tie_policy.on_insert(entry(2, 999, 0, 10, 2));
  EXPECT_EQ(tie_policy.choose_victim({}), 2u);
}

TEST(SortedPolicy, FactoryNames) {
  EXPECT_EQ(make_fifo()->name(), "ETIME");
  EXPECT_EQ(make_lru()->name(), "ATIME");
  EXPECT_EQ(make_lfu()->name(), "NREF");
  EXPECT_EQ(make_size()->name(), "SIZE");
  EXPECT_EQ(make_hyper_g()->name(), "NREF+ATIME+SIZE");
}

TEST(SortedPolicy, FactoryByName) {
  EXPECT_NE(make_policy_by_name("lru"), nullptr);
  EXPECT_NE(make_policy_by_name("SIZE"), nullptr);
  EXPECT_NE(make_policy_by_name("lru-min"), nullptr);
  EXPECT_NE(make_policy_by_name("pitkow-recker"), nullptr);
  EXPECT_NE(make_policy_by_name("hyper-g"), nullptr);
  EXPECT_NE(make_policy_by_name("log2size"), nullptr);
  EXPECT_EQ(make_policy_by_name("bogus"), nullptr);
}

}  // namespace
}  // namespace wcs
