#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(Trace, UrlServerExtraction) {
  EXPECT_EQ(url_server("http://a.b.c/path"), "a.b.c");
  EXPECT_EQ(url_server("http://a.b.c"), "a.b.c");
  EXPECT_EQ(url_server("http://a.b.c:8080/x"), "a.b.c");
  EXPECT_EQ(url_server("/relative/path"), "-");
  EXPECT_EQ(url_server("http:///odd"), "-");
}

TEST(Trace, InternUrlIsIdempotent) {
  Trace trace;
  const UrlId a = trace.intern_url("http://s1/x.html");
  const UrlId b = trace.intern_url("http://s1/x.html");
  const UrlId c = trace.intern_url("http://s1/y.html");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(trace.url_count(), 2u);
  EXPECT_EQ(trace.url_name(a), "http://s1/x.html");
}

TEST(Trace, ServersSharedAcrossUrls) {
  Trace trace;
  const UrlId a = trace.intern_url("http://s1/x.html");
  const UrlId b = trace.intern_url("http://s1/y.html");
  const UrlId c = trace.intern_url("http://s2/z.html");
  EXPECT_EQ(trace.server_of(a), trace.server_of(b));
  EXPECT_NE(trace.server_of(a), trace.server_of(c));
  EXPECT_EQ(trace.server_count(), 2u);
  EXPECT_EQ(trace.server_name(trace.server_of(c)), "s2");
}

TEST(Trace, ClientInterning) {
  Trace trace;
  const ClientId a = trace.intern_client("host1");
  const ClientId b = trace.intern_client("host1");
  const ClientId c = trace.intern_client("host2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(trace.client_count(), 2u);
}

TEST(Trace, TotalsAndDayCount) {
  Trace trace;
  const UrlId u1 = trace.intern_url("http://s/a.gif");
  const UrlId u2 = trace.intern_url("http://s/b.gif");
  trace.add({.time = 10, .size = 100, .url = u1});
  trace.add({.time = 86'400 * 2 + 5, .size = 200, .url = u2});
  trace.add({.time = 86'400 * 2 + 9, .size = 100, .url = u1});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.total_bytes(), 400u);
  EXPECT_EQ(trace.day_count(), 3);  // days 0..2
}

TEST(Trace, UniqueBytesUsesLastSeenSize) {
  Trace trace;
  const UrlId u1 = trace.intern_url("http://s/a.gif");
  trace.add({.time = 1, .size = 100, .url = u1});
  trace.add({.time = 2, .size = 300, .url = u1});  // document grew
  EXPECT_EQ(trace.unique_bytes(), 300u);
}

TEST(Trace, EmptyTrace) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.day_count(), 0);
  EXPECT_EQ(trace.total_bytes(), 0u);
  EXPECT_EQ(trace.unique_bytes(), 0u);
}

TEST(Trace, TypeOfUsesUrlClassification) {
  Trace trace;
  const UrlId gif = trace.intern_url("http://s/a.gif");
  const UrlId html = trace.intern_url("http://s/a.html");
  EXPECT_EQ(trace.type_of(gif), FileType::kGraphics);
  EXPECT_EQ(trace.type_of(html), FileType::kText);
}

}  // namespace
}  // namespace wcs
