#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/core/policy.h"

namespace wcs {
namespace {

/// A tiny handcrafted trace: two small popular docs, one large audio doc.
Trace tiny_trace() {
  Trace trace;
  const UrlId a = trace.intern_url("http://s/a.html");
  const UrlId b = trace.intern_url("http://s/b.gif");
  const UrlId big = trace.intern_url("http://s/song.au");
  auto add = [&](SimTime t, UrlId u, std::uint64_t size, FileType type) {
    Request r;
    r.time = t;
    r.url = u;
    r.size = size;
    r.type = type;
    trace.add(r);
  };
  for (int day = 0; day < 10; ++day) {
    const SimTime base = day_start(day);
    add(base + 10, a, 1000, FileType::kText);
    add(base + 20, b, 2000, FileType::kGraphics);
    add(base + 30, a, 1000, FileType::kText);
    add(base + 40, big, 50'000, FileType::kAudio);
  }
  return trace;
}

TEST(Simulator, InfiniteCacheMaxNeededEqualsUniqueBytes) {
  const Trace trace = tiny_trace();
  const SimResult result = simulate_infinite(trace);
  EXPECT_EQ(result.max_used_bytes, 53'000u);
  EXPECT_EQ(result.stats.evictions, 0u);
  // 40 requests, 37 hits (3 first references).
  EXPECT_EQ(result.stats.requests, 40u);
  EXPECT_EQ(result.stats.hits, 37u);
}

TEST(Simulator, InfiniteDailyHitRateRisesAfterDayZero) {
  const SimResult result = simulate_infinite(tiny_trace());
  const auto hr = result.daily.daily_hr();
  ASSERT_GE(hr.size(), 2u);
  EXPECT_DOUBLE_EQ(*hr[0], 0.25);  // day 0: 1 hit of 4
  EXPECT_DOUBLE_EQ(*hr[1], 1.0);   // everything cached
}

TEST(Simulator, FiniteCacheWithSizePolicySheddsBigDoc) {
  const Trace trace = tiny_trace();
  // Room for the two small docs only.
  const SimResult result = simulate(trace, 5000, [] { return make_size(); });
  // a and b always hit after day 0; big never fits -> rejected, never hits.
  EXPECT_EQ(result.stats.rejected_too_large, 10u);
  EXPECT_EQ(result.stats.hits, 28u);
}

TEST(Simulator, ResultsDeterministic) {
  const Trace trace = tiny_trace();
  const SimResult a = simulate(trace, 10'000, [] { return make_lru(); });
  const SimResult b = simulate(trace, 10'000, [] { return make_lru(); });
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
}

TEST(Simulator, TwoLevelL2CatchesL1Victims) {
  const Trace trace = tiny_trace();
  const TwoLevelSimResult result = simulate_two_level(
      trace, 5000, [] { return make_size(); }, [] { return make_lru(); });
  // big misses L1 forever but hits the infinite L2 from its 2nd reference.
  EXPECT_EQ(result.stats.l2_hits, 9u);
  EXPECT_GT(result.l2_daily.overall_whr(), result.l2_daily.overall_hr());
}

TEST(Simulator, PartitionedAudioIsolation) {
  const Trace trace = tiny_trace();
  // Total 8kB: audio partition 4kB (too small for the song), non-audio
  // 4kB (fits both small docs).
  const PartitionedSimResult result =
      simulate_partitioned_audio(trace, 8000, 0.5, [] { return make_size(); });
  EXPECT_EQ(result.audio_stats.hits, 0u);
  EXPECT_EQ(result.non_audio_stats.hits, 28u);
  // Class rates are over ALL requests.
  EXPECT_DOUBLE_EQ(result.non_audio_daily.overall_hr(), 28.0 / 40.0);
  EXPECT_DOUBLE_EQ(result.audio_daily.overall_hr(), 0.0);
}

TEST(Simulator, InfiniteByClassReference) {
  const ClassWhrReference reference = simulate_infinite_by_class(tiny_trace());
  // Audio: 9 hits of 50kB each over total bytes.
  const double total_bytes = 10.0 * (1000 + 2000 + 1000 + 50'000);
  EXPECT_NEAR(reference.audio_daily.overall_whr(), 9.0 * 50'000.0 / total_bytes, 1e-9);
  EXPECT_GT(reference.non_audio_daily.overall_whr(), 0.0);
}

}  // namespace
}  // namespace wcs
