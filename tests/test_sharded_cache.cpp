// ShardedCache determinism contract (DESIGN.md §13):
//   * shards == 1 is bit-identical to the plain Cache on every preset and
//     on the full Experiment-2 policy grid;
//   * with no eviction pressure (infinite capacity), merged aggregates AND
//     per-URL outcomes are identical for any shard count — partitioning a
//     cache that never evicts must be invisible;
//   * under a finite budget, per-shard eviction makes shard counts behave
//     like distinct (valid) configurations, so the finite-capacity claims
//     are conservation laws plus audit cleanliness, not bit-equality.
#include "src/core/sharded_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/sim/experiments.h"
#include "src/sim/simulator.h"

namespace wcs {
namespace {

const char* const kPresets[] = {"U", "BR", "BL", "C", "G"};

[[nodiscard]] Trace preset_trace(const char* name, double scale = 0.05) {
  return WorkloadGenerator{WorkloadSpec::preset(name).scaled(scale)}.generate().trace;
}

[[nodiscard]] std::uint64_t total_bytes(const Trace& trace) {
  std::uint64_t total = 0;
  for (const Request& request : trace.requests()) total += request.size;
  return total;
}

// All the monotone counters. max_used_bytes is a high-water mark, not a
// conserved quantity: the merged value sums per-shard peaks, which can
// exceed a single cache's peak whenever documents shrink (size-change
// misses release bytes at different times on different partitions) — so
// cross-shard-count checks treat it separately.
void expect_same_counters(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.requested_bytes, b.requested_bytes);
  EXPECT_EQ(a.hit_bytes, b.hit_bytes);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.evicted_bytes, b.evicted_bytes);
  EXPECT_EQ(a.size_change_misses, b.size_change_misses);
  EXPECT_EQ(a.rejected_too_large, b.rejected_too_large);
  EXPECT_EQ(a.admission_rejects, b.admission_rejects);
  EXPECT_EQ(a.dead_on_arrival_evictions, b.dead_on_arrival_evictions);
  EXPECT_EQ(a.periodic_sweeps, b.periodic_sweeps);
}

void expect_same_stats(const CacheStats& a, const CacheStats& b) {
  expect_same_counters(a, b);
  EXPECT_EQ(a.max_used_bytes, b.max_used_bytes);
}

TEST(ShardedCacheTest, RoutingIsStableAndInRange) {
  for (std::uint32_t shards : {1u, 2u, 4u, 7u, 16u}) {
    for (UrlId url = 0; url < 1000; ++url) {
      const std::uint32_t home = shard_of_url(url, shards);
      EXPECT_LT(home, shards);
      EXPECT_EQ(home, shard_of_url(url, shards));  // pure function of (url, shards)
    }
  }
}

TEST(ShardedCacheTest, RoutingSpreadsUrls) {
  // splitmix64 over dense ids must not collapse onto few shards.
  const std::uint32_t shards = 8;
  std::vector<std::uint32_t> counts(shards, 0);
  for (UrlId url = 0; url < 8000; ++url) ++counts[shard_of_url(url, shards)];
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    EXPECT_GT(counts[shard], 500u) << "shard " << shard << " starved";
    EXPECT_LT(counts[shard], 1500u) << "shard " << shard << " overloaded";
  }
}

TEST(ShardedCacheTest, RejectsUnsplittableConfigurations) {
  ShardedCacheConfig config;
  config.shards = 0;
  EXPECT_THROW((ShardedCache{config, [] { return make_lru(); }}), std::invalid_argument);
  config.shards = 4;
  config.capacity_bytes = 3;  // positive but below one byte per shard
  EXPECT_THROW((ShardedCache{config, [] { return make_lru(); }}), std::invalid_argument);
  EXPECT_THROW((ShardedCache{config, {}}), std::invalid_argument);
}

TEST(ShardedCacheTest, CapacitySplitsEvenlyWithRemainderToLowShards) {
  ShardedCacheConfig config;
  config.shards = 4;
  config.capacity_bytes = 10;
  const ShardedCache cache{config, [] { return make_lru(); }};
  const std::vector<ShardOccupancy> occupancy = cache.occupancy();
  ASSERT_EQ(occupancy.size(), 4u);
  EXPECT_EQ(occupancy[0].capacity_bytes, 3u);
  EXPECT_EQ(occupancy[1].capacity_bytes, 3u);
  EXPECT_EQ(occupancy[2].capacity_bytes, 2u);
  EXPECT_EQ(occupancy[3].capacity_bytes, 2u);
}

// shards == 1 must be the plain Cache, bit for bit, on every preset under
// real eviction pressure (10% of requested bytes).
TEST(ShardedCacheTest, SingleShardBitIdenticalToPlainCacheOnAllPresets) {
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace trace = preset_trace(preset);
    const std::uint64_t capacity = total_bytes(trace) / 10;
    const SimResult flat = simulate(trace, capacity, [] { return make_size(); });
    const SimResult sharded =
        simulate_sharded(trace, capacity, [] { return make_size(); }, /*shards=*/1);
    expect_same_stats(flat.stats, sharded.stats);
    EXPECT_EQ(flat.daily.overall_hr(), sharded.daily.overall_hr());
    EXPECT_EQ(flat.daily.overall_whr(), sharded.daily.overall_whr());
    EXPECT_EQ(sharded.concurrency.threads, 1u);
    EXPECT_EQ(sharded.concurrency.shards, 1u);
  }
}

// ... and across the full Experiment-2 removal-policy grid, where the
// policies' tag streams (seeded per shard) would expose any seed drift.
TEST(ShardedCacheTest, SingleShardBitIdenticalAcrossExperiment2Grid) {
  const Trace trace = preset_trace("U");
  const std::uint64_t capacity = total_bytes(trace) / 10;
  for (const KeySpec& spec : KeySpec::experiment2_grid()) {
    SCOPED_TRACE(spec.name());
    const SimResult flat = simulate(trace, capacity, [&] { return make_sorted_policy(spec); });
    const SimResult sharded =
        simulate_sharded(trace, capacity, [&] { return make_sorted_policy(spec); },
                         /*shards=*/1);
    expect_same_stats(flat.stats, sharded.stats);
  }
}

// Partitioning a cache that never evicts must be invisible: merged stats
// and every per-URL outcome identical for any shard count.
TEST(ShardedCacheTest, ShardCountInvariantWithoutEvictionOnAllPresets) {
  for (const char* preset : kPresets) {
    SCOPED_TRACE(preset);
    const Trace trace = preset_trace(preset);

    std::vector<CacheStats> merged;
    std::vector<std::vector<bool>> outcomes;
    for (const std::uint32_t shards : {1u, 2u, 4u, 7u, 16u}) {
      ShardedCacheConfig config;
      config.shards = shards;  // capacity 0: infinite, no eviction anywhere
      ShardedCache cache{config, [] { return make_size(); }};
      std::vector<bool> hits;
      hits.reserve(trace.size());
      for (const Request& request : trace.requests()) {
        hits.push_back(cache.access(request).hit);
      }
      EXPECT_TRUE(cache.audit().ok());
      merged.push_back(cache.merged_stats());
      outcomes.push_back(std::move(hits));
    }
    for (std::size_t i = 1; i < merged.size(); ++i) {
      expect_same_counters(merged[0], merged[i]);
      // merged[0] (one shard) is the true global peak; a peak-sum over more
      // shards can only dominate it.
      EXPECT_GE(merged[i].max_used_bytes, merged[0].max_used_bytes);
      EXPECT_EQ(outcomes[0], outcomes[i]) << "per-URL outcomes diverged at shard set " << i;
    }
  }
}

// Finite capacity: shard counts are distinct configurations, but every one
// of them must satisfy the conservation laws and stay audit-clean under a
// periodic mid-run sweep.
TEST(ShardedCacheTest, FiniteCapacityConservationAndAuditAcrossShardCounts) {
  const Trace trace = preset_trace("BR");
  const std::uint64_t capacity = total_bytes(trace) / 10;
  for (const std::uint32_t shards : {1u, 2u, 4u, 7u, 16u}) {
    SCOPED_TRACE(shards);
    SimAudit audit;
    audit.interval = 1000;  // sweep the invariants mid-run, not just at the end
    const SimResult result =
        simulate_sharded(trace, capacity, [] { return make_size(); }, shards, {}, audit);
    EXPECT_EQ(result.stats.requests, trace.size());
    EXPECT_EQ(result.stats.requested_bytes, total_bytes(trace));
    EXPECT_LE(result.stats.hits, result.stats.requests);
    EXPECT_LE(result.stats.hit_bytes, result.stats.requested_bytes);
    EXPECT_LE(result.stats.evictions, result.stats.insertions);
    EXPECT_EQ(result.concurrency.shards, shards);
  }
}

TEST(ShardedCacheTest, MergedStatsAreExactSumsOfShardStats) {
  const Trace trace = preset_trace("U");
  ShardedCacheConfig config;
  config.shards = 4;
  config.capacity_bytes = total_bytes(trace) / 10;
  ShardedCache cache{config, [] { return make_size(); }};
  for (const Request& request : trace.requests()) (void)cache.access(request);

  const std::vector<CacheStats> per_shard = cache.shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  CacheStats sum;
  for (const CacheStats& s : per_shard) {
    sum.requests += s.requests;
    sum.hits += s.hits;
    sum.requested_bytes += s.requested_bytes;
    sum.hit_bytes += s.hit_bytes;
    sum.insertions += s.insertions;
    sum.evictions += s.evictions;
    sum.evicted_bytes += s.evicted_bytes;
    sum.size_change_misses += s.size_change_misses;
    sum.rejected_too_large += s.rejected_too_large;
    sum.admission_rejects += s.admission_rejects;
    sum.dead_on_arrival_evictions += s.dead_on_arrival_evictions;
    sum.periodic_sweeps += s.periodic_sweeps;
    sum.max_used_bytes += s.max_used_bytes;
  }
  expect_same_stats(sum, cache.merged_stats());
  EXPECT_TRUE(cache.audit().ok());
}

TEST(ShardedCacheTest, EveryEntryLivesOnItsHomeShard) {
  const Trace trace = preset_trace("U");
  ShardedCacheConfig config;
  config.shards = 7;
  ShardedCache cache{config, [] { return make_lru(); }};
  for (const Request& request : trace.requests()) (void)cache.access(request);
  std::uint64_t entries = 0;
  const std::vector<ShardOccupancy> occupancy = cache.occupancy();
  for (const ShardOccupancy& shard : occupancy) entries += shard.entry_count;
  EXPECT_GT(entries, 0u);
  EXPECT_TRUE(cache.audit().ok());  // audit() includes the routing sweep
}

}  // namespace
}  // namespace wcs
