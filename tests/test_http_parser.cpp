#include "src/http/parser.h"

#include <gtest/gtest.h>

namespace wcs {
namespace {

TEST(HttpParser, ParsesSimpleRequest) {
  const auto request = parse_request("GET /x.html HTTP/1.0\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/x.html");
  EXPECT_EQ(request->version, "HTTP/1.0");
  EXPECT_EQ(request->headers.get("Host"), "h");
}

TEST(HttpParser, ParsesRequestWithBody) {
  const auto request =
      parse_request("POST /f HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "abcd");
}

TEST(HttpParser, ToleratesBareLfLineEndings) {
  const auto request = parse_request("GET / HTTP/1.0\nHost: h\n\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers.get("host"), "h");
}

TEST(HttpParser, Http09RequestWithoutVersion) {
  RequestParser parser;
  const auto messages = parser.feed("GET /old.html\r\n\r\n");
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].version, "HTTP/0.9");
}

TEST(HttpParser, RejectsGarbageStartLine) {
  RequestParser parser;
  parser.feed("NONSENSE\r\n\r\n");
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, IncrementalByteAtATime) {
  RequestParser parser;
  const std::string wire = "GET /inc.html HTTP/1.0\r\nX-A: 1\r\n\r\n";
  std::vector<HttpRequest> all;
  for (const char c : wire) {
    auto out = parser.feed(std::string_view{&c, 1});
    for (auto& m : out) all.push_back(std::move(m));
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].target, "/inc.html");
  EXPECT_FALSE(parser.has_partial());
}

TEST(HttpParser, PipelinedRequests) {
  RequestParser parser;
  const auto messages =
      parser.feed("GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\n\r\n");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].target, "/a");
  EXPECT_EQ(messages[1].target, "/b");
}

TEST(HttpParser, HeaderFolding) {
  const auto request =
      parse_request("GET / HTTP/1.0\r\nX-Long: part1\r\n part2\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers.get("X-Long"), "part1 part2");
}

TEST(HttpParser, MalformedHeaderFails) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.0\r\nno-colon-here\r\n\r\n");
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, ParsesResponseWithContentLength) {
  const auto response = parse_response(
      "HTTP/1.0 200 OK\r\nContent-Length: 5\r\nLast-Modified: x\r\n\r\nhello");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->reason, "OK");
  EXPECT_EQ(response->body, "hello");
}

TEST(HttpParser, ResponseReasonMayContainSpaces) {
  const auto response =
      parse_response("HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->reason, "Not Found");
}

TEST(HttpParser, CloseDelimitedResponseNeedsFinish) {
  ResponseParser parser;
  auto messages = parser.feed("HTTP/1.0 200 OK\r\n\r\npartial body");
  EXPECT_TRUE(messages.empty());
  messages = parser.feed(" continues");
  EXPECT_TRUE(messages.empty());
  const auto last = parser.finish();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->body, "partial body continues");
}

TEST(HttpParser, PipelinedResponses) {
  ResponseParser parser;
  const auto messages = parser.feed(
      "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nab"
      "HTTP/1.0 304 Not Modified\r\nContent-Length: 0\r\n\r\n");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].body, "ab");
  EXPECT_EQ(messages[1].status, 304);
}

TEST(HttpParser, ResponseInvalidStatusFails) {
  ResponseParser parser;
  parser.feed("HTTP/1.0 9999 Wat\r\n\r\n");
  EXPECT_TRUE(parser.failed());
  ResponseParser parser2;
  parser2.feed("NOTHTTP 200 OK\r\n\r\n");
  EXPECT_TRUE(parser2.failed());
}

TEST(HttpParser, ResetClearsState) {
  RequestParser parser;
  parser.feed("GARBAGE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.reset();
  EXPECT_FALSE(parser.failed());
  const auto messages = parser.feed("GET /ok HTTP/1.0\r\n\r\n");
  EXPECT_EQ(messages.size(), 1u);
}

TEST(HttpParser, HeaderBlockHelper) {
  HeaderMap headers;
  const auto consumed = parse_header_block("A: 1\r\nB: 2\r\n\r\nrest", headers);
  ASSERT_TRUE(consumed.has_value());
  EXPECT_EQ(*consumed, 14u);
  EXPECT_EQ(headers.get("A"), "1");
  EXPECT_EQ(headers.get("B"), "2");

  HeaderMap incomplete;
  EXPECT_EQ(parse_header_block("A: 1\r\n", incomplete), 0u);

  HeaderMap bad;
  EXPECT_FALSE(parse_header_block(": nameless\r\n\r\n", bad).has_value());
}

TEST(HttpParser, RoundTripSerializeParse) {
  HttpRequest request;
  request.method = "GET";
  request.target = "http://host/path/doc.html";
  request.headers.add("If-Modified-Since", "Sun, 01 Jan 1995 00:00:00 GMT");
  const auto reparsed = parse_request(request.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->target, request.target);
  EXPECT_EQ(reparsed->headers.get("if-modified-since"),
            "Sun, 01 Jan 1995 00:00:00 GMT");
}

}  // namespace
}  // namespace wcs
